//! Arbitrary-precision unsigned integers.
//!
//! [`BigUint`] stores its magnitude as little-endian `u64` limbs with the
//! invariant that the most significant limb is nonzero (zero is the empty
//! limb vector). All arithmetic is exact; overflow cannot occur.
//!
//! The implementation favours clarity over asymptotic sophistication:
//! schoolbook multiplication and Knuth Algorithm D division are more than
//! fast enough for the operand sizes that exact network inference produces
//! (hundreds to a few thousand bits).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

/// An arbitrary-precision unsigned integer.
///
/// # Examples
///
/// ```
/// use bayonet_num::BigUint;
///
/// let a = BigUint::from(10u64).pow(30);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), format!("1{}", "0".repeat(60)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; no trailing zero limbs (zero is empty).
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Returns `true` if `self` is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if `self` is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Constructs a value from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// A read-only view of the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Number of significant bits (0 for the value zero).
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64),
        }
    }

    /// Returns bit `i` (little-endian position) of the value.
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / 64) as usize;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Returns `true` if the value is even. Zero is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Lossy conversion to `f64` (correct to within rounding of the top
    /// 64 significant bits; returns `f64::INFINITY` when out of range).
    pub fn to_f64(&self) -> f64 {
        let bits = self.bits();
        if bits <= 64 {
            return self.to_u64().unwrap_or(0) as f64;
        }
        // Take the top 64 bits and scale by the discarded exponent.
        let shift = bits - 64;
        let top = (self >> shift).to_u64().expect("top 64 bits fit");
        let x = top as f64;
        let exp = shift as i32;
        if exp > f64::MAX_EXP {
            f64::INFINITY
        } else {
            x * 2f64.powi(exp)
        }
    }

    /// `self + other`, in place.
    fn add_assign_ref(&mut self, other: &BigUint) {
        let mut carry = 0u64;
        for i in 0..other.limbs.len().max(self.limbs.len()) {
            if i >= self.limbs.len() {
                self.limbs.push(0);
            }
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = self.limbs[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// `self - other`, in place.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    fn sub_assign_ref(&mut self, other: &BigUint) {
        assert!(
            *self >= *other,
            "BigUint subtraction underflow: {self} - {other}"
        );
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            self.limbs[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self - other` if `other <= self`, otherwise `None`.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if *self < *other {
            None
        } else {
            let mut out = self.clone();
            out.sub_assign_ref(other);
            Some(out)
        }
    }

    /// Schoolbook multiplication.
    fn mul_ref(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = a as u128 * b as u128 + out[i + j] as u128 + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Quotient and remainder of `self / divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_limb(divisor.limbs[0]);
            return (q, BigUint::from(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Fast path: divide by a single limb.
    fn div_rem_limb(&self, d: u64) -> (BigUint, u64) {
        debug_assert!(d != 0);
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (BigUint::from_limbs(q), rem as u64)
    }

    /// Knuth TAOCP Vol. 2 Algorithm D (multi-limb division).
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        // D1: normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros();
        let v = divisor << (shift as u64);
        let mut u = (self << (shift as u64)).limbs;
        u.push(0); // extra headroom limb
        let n = v.limbs.len();
        let m = u.len() - n - 1;
        let vn1 = v.limbs[n - 1];
        let vn2 = v.limbs[n - 2];
        let mut q = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            // D3: estimate q̂ from the top two limbs of the current remainder.
            let numer = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = numer / vn1 as u128;
            let mut rhat = numer % vn1 as u128;
            while qhat >> 64 != 0 || qhat * vn2 as u128 > ((rhat << 64) | u[j + n - 2] as u128) {
                qhat -= 1;
                rhat += vn1 as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // D4: multiply and subtract q̂ * v from u[j .. j+n].
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * v.limbs[i] as u128 + carry;
                carry = p >> 64;
                let t = u[i + j] as i128 - (p as u64) as i128 + borrow;
                u[i + j] = t as u64;
                borrow = t >> 64; // arithmetic shift: 0 or -1
            }
            let t = u[j + n] as i128 - carry as i128 + borrow;
            u[j + n] = t as u64;
            // D5/D6: if we subtracted too much, add back one v.
            if t < 0 {
                qhat -= 1;
                let mut c = 0u128;
                for i in 0..n {
                    let s = u[i + j] as u128 + v.limbs[i] as u128 + c;
                    u[i + j] = s as u64;
                    c = s >> 64;
                }
                u[j + n] = (u[j + n] as u128).wrapping_add(c) as u64;
            }
            q[j] = qhat as u64;
        }

        u.truncate(n);
        let rem = BigUint::from_limbs(u) >> (shift as u64);
        (BigUint::from_limbs(q), rem)
    }

    /// Greatest common divisor (binary GCD; `gcd(0, x) = x`).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        // Factor out common powers of two.
        let az = a.trailing_zeros();
        let bz = b.trailing_zeros();
        let common = az.min(bz);
        a = &a >> az;
        b = &b >> bz;
        while a != b {
            if a < b {
                std::mem::swap(&mut a, &mut b);
            }
            a.sub_assign_ref(&b);
            if a.is_zero() {
                break;
            }
            let z = a.trailing_zeros();
            a = &a >> z;
        }
        if a.is_zero() {
            &b << common
        } else {
            &a << common
        }
    }

    /// Least common multiple (`lcm(0, x) = 0`).
    pub fn lcm(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let g = self.gcd(other);
        let (q, _) = self.div_rem(&g);
        q.mul_ref(other)
    }

    /// Number of trailing zero bits.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn trailing_zeros(&self) -> u64 {
        assert!(!self.is_zero(), "trailing_zeros of zero");
        let mut count = 0u64;
        for &l in &self.limbs {
            if l == 0 {
                count += 64;
            } else {
                return count + l.trailing_zeros() as u64;
            }
        }
        unreachable!("normalized nonzero BigUint has a nonzero limb")
    }

    /// Raises `self` to the power `exp` by binary exponentiation.
    pub fn pow(&self, exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut result = BigUint::one();
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                result = result.mul_ref(&base);
            }
            e >>= 1;
            if e > 0 {
                base = base.mul_ref(&base);
            }
        }
        result
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from(v as u64)
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $impl_fn:expr) => {
        impl $trait<&BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                let f: fn(&BigUint, &BigUint) -> BigUint = $impl_fn;
                f(self, rhs)
            }
        }
        impl $trait<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                $trait::$method(self, &rhs)
            }
        }
    };
}

forward_binop!(Add, add, |a, b| {
    let mut out = a.clone();
    out.add_assign_ref(b);
    out
});
forward_binop!(Sub, sub, |a, b| {
    let mut out = a.clone();
    out.sub_assign_ref(b);
    out
});
forward_binop!(Mul, mul, |a, b| a.mul_ref(b));

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        self.add_assign_ref(rhs);
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        self.sub_assign_ref(rhs);
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = self.mul_ref(rhs);
    }
}

impl Shl<u64> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: u64) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        BigUint::from_limbs(limbs)
    }
}

impl Shl<u64> for BigUint {
    type Output = BigUint;
    fn shl(self, bits: u64) -> BigUint {
        &self << bits
    }
}

impl Shr<u64> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: u64) -> BigUint {
        let limb_shift = (bits / 64) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut limbs = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            limbs.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                limbs.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        BigUint::from_limbs(limbs)
    }
}

impl Shr<u64> for BigUint {
    type Output = BigUint;
    fn shr(self, bits: u64) -> BigUint {
        &self >> bits
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Peel off 19 decimal digits at a time (10^19 fits in a u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_limb(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut s = chunks.pop().unwrap().to_string();
        for c in chunks.iter().rev() {
            s.push_str(&format!("{c:019}"));
        }
        f.write_str(&s)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        write!(f, "{:x}", self.limbs.last().unwrap())?;
        for l in self.limbs.iter().rev().skip(1) {
            write!(f, "{l:016x}")?;
        }
        Ok(())
    }
}

/// Error returned when parsing a [`BigUint`] (or [`BigInt`](crate::BigInt),
/// or [`Rat`](crate::Rat)) from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNumError {
    msg: String,
}

impl ParseNumError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        ParseNumError { msg: msg.into() }
    }
}

impl fmt::Display for ParseNumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid number syntax: {}", self.msg)
    }
}

impl std::error::Error for ParseNumError {}

impl FromStr for BigUint {
    type Err = ParseNumError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseNumError::new("empty string"));
        }
        let mut out = BigUint::zero();
        let ten = BigUint::from(10u64);
        for c in s.chars() {
            let d = c
                .to_digit(10)
                .ok_or_else(|| ParseNumError::new(format!("unexpected character {c:?}")))?;
            out = out.mul_ref(&ten);
            out.add_assign_ref(&BigUint::from(d as u64));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        s.parse().unwrap()
    }

    #[test]
    fn zero_and_one_identities() {
        let z = BigUint::zero();
        let o = BigUint::one();
        assert!(z.is_zero());
        assert!(o.is_one());
        assert_eq!(&z + &o, o);
        assert_eq!(&o * &z, z);
        assert_eq!(z.bits(), 0);
        assert_eq!(o.bits(), 1);
    }

    #[test]
    fn add_with_carry_chain() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::one();
        let s = &a + &b;
        assert_eq!(s.to_u128(), Some(1u128 << 64));
        assert_eq!(s.limbs(), &[0, 1]);
    }

    #[test]
    fn sub_with_borrow_chain() {
        let a = BigUint::from(1u128 << 64);
        let b = BigUint::one();
        let d = &a - &b;
        assert_eq!(d.to_u64(), Some(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = BigUint::one() - BigUint::from(2u64);
    }

    #[test]
    fn checked_sub_returns_none_on_underflow() {
        assert_eq!(BigUint::one().checked_sub(&BigUint::from(2u64)), None);
        assert_eq!(
            BigUint::from(5u64).checked_sub(&BigUint::from(2u64)),
            Some(BigUint::from(3u64))
        );
    }

    #[test]
    fn mul_large() {
        let a = big("340282366920938463463374607431768211455"); // 2^128 - 1
        let sq = &a * &a;
        assert_eq!(
            sq.to_string(),
            "115792089237316195423570985008687907852589419931798687112530834793049593217025"
        );
    }

    #[test]
    fn div_rem_small_divisor() {
        let a = big("123456789012345678901234567890");
        let (q, r) = a.div_rem(&BigUint::from(97u64));
        assert_eq!((&q * &BigUint::from(97u64)) + &r, a);
        assert!(r < BigUint::from(97u64));
    }

    #[test]
    fn div_rem_multi_limb_divisor() {
        let a = big("123456789012345678901234567890123456789012345678901234567890");
        let b = big("9876543210987654321098765432109876543");
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
    }

    #[test]
    fn div_rem_knuth_addback_case() {
        // Crafted operands that force the rare D6 "add back" correction.
        let u = BigUint::from_limbs(vec![0, 0, 1 << 63]);
        let v = BigUint::from_limbs(vec![1, 1 << 63]);
        let (q, r) = u.div_rem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r < v);
    }

    #[test]
    fn shifts_roundtrip() {
        let a = big("987654321987654321987654321");
        for bits in [0u64, 1, 7, 63, 64, 65, 130] {
            assert_eq!(&(&a << bits) >> bits, a);
        }
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(
            BigUint::from(48u64).gcd(&BigUint::from(36u64)),
            BigUint::from(12u64)
        );
        assert_eq!(
            BigUint::zero().gcd(&BigUint::from(7u64)),
            BigUint::from(7u64)
        );
        assert_eq!(
            BigUint::from(7u64).gcd(&BigUint::zero()),
            BigUint::from(7u64)
        );
        let a = big("123456789012345678901234567890");
        assert_eq!(a.gcd(&a), a);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(
            BigUint::from(4u64).lcm(&BigUint::from(6u64)),
            BigUint::from(12u64)
        );
        assert_eq!(BigUint::zero().lcm(&BigUint::from(5u64)), BigUint::zero());
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let three = BigUint::from(3u64);
        assert_eq!(three.pow(0), BigUint::one());
        assert_eq!(three.pow(5), BigUint::from(243u64));
        assert_eq!(
            BigUint::from(10u64).pow(40).to_string(),
            format!("1{}", "0".repeat(40))
        );
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in [
            "0",
            "1",
            "18446744073709551616",
            "123456789012345678901234567890123",
        ] {
            assert_eq!(big(s).to_string(), s);
        }
    }

    #[test]
    fn ordering() {
        assert!(big("100") < big("101"));
        assert!(big("18446744073709551616") > big("18446744073709551615"));
    }

    #[test]
    fn to_f64_accuracy() {
        assert_eq!(BigUint::from(12345u64).to_f64(), 12345.0);
        let a = BigUint::from(10u64).pow(30);
        let rel = (a.to_f64() - 1e30).abs() / 1e30;
        assert!(rel < 1e-12, "relative error {rel}");
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(BigUint::from(8u64).trailing_zeros(), 3);
        assert_eq!((BigUint::one() << 130u64).trailing_zeros(), 130);
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(format!("{:x}", big("255")), "ff");
        assert_eq!(
            format!("{:x}", BigUint::one() << 64u64),
            "10000000000000000"
        );
    }
}
