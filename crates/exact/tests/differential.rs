//! Differential tests: multi-threaded exact inference must be
//! **bit-for-bit identical** to the single-threaded engine.
//!
//! For every program under `examples/bay/` the posterior (terminals,
//! discarded mass, statistics) and the rendered CLI text are compared
//! against a `threads = 1` baseline for several worker counts, with the
//! parallel threshold forced low so even small frontiers take the
//! work-stealing path. The symbolic-synthesis pipeline is covered too.
//!
//! The `BAYONET_TEST_THREADS` environment variable adds one extra worker
//! count to the matrix; CI runs the suite with it set to both `1` and `8`.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use bayonet_exact::{
    analyze, answer, synthesize_result, Analysis, ComputePool, ExactOptions, Objective,
    SynthesisOptions,
};
use bayonet_lang::parse;
use bayonet_net::{compile, scheduler_for, Model, Scheduler};
use bayonet_num::Rat;

mod common;

fn example_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/bay"))
}

fn example_sources() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = fs::read_dir(example_dir())
        .expect("examples/bay exists")
        .filter_map(|e| {
            let path = e.expect("dir entry").path();
            if path.extension().is_some_and(|ext| ext == "bay") {
                let name = path.file_name().unwrap().to_string_lossy().into_owned();
                Some((name, fs::read_to_string(&path).expect("readable example")))
            } else {
                None
            }
        })
        .collect();
    out.sort();
    assert!(!out.is_empty(), "no example programs found");
    out
}

/// Worker counts under test: the fixed {1, 2, 8} matrix plus whatever
/// `BAYONET_TEST_THREADS` asks for.
fn thread_matrix() -> Vec<usize> {
    let mut counts = vec![1, 2, 8];
    if let Ok(v) = std::env::var("BAYONET_TEST_THREADS") {
        let extra: usize = v
            .parse()
            .expect("BAYONET_TEST_THREADS must be a positive integer");
        if !counts.contains(&extra) {
            counts.push(extra.max(1));
        }
    }
    counts
}

/// Compiles `source`, binding every declared parameter to `binding` when
/// given (programs like `lossy_link.bay` use parameters inside `flip`,
/// which requires concrete values; `ecmp_costs.bay` stays fully symbolic).
fn build(source: &str, binding: Option<Rat>) -> (Model, Box<dyn Scheduler>) {
    let program = parse(source).expect("example parses");
    let mut model = compile(&program).expect("example compiles");
    if let Some(value) = binding {
        let names: Vec<String> = model
            .params
            .iter()
            .map(|id| model.params.name(id).to_string())
            .collect();
        for name in names {
            model.bind_param(&name, value.clone()).expect("bindable");
        }
    }
    let scheduler = scheduler_for(&model);
    (model, scheduler)
}

fn options(threads: usize) -> ExactOptions {
    ExactOptions {
        threads,
        // Force the work-stealing path even on tiny frontiers, so the
        // differential comparison actually exercises parallel expansion.
        // (Under `BAYONET_TEST_ENGINE=bdd` both knobs are ignored and the
        // matrix degenerates to self-consistency, which is intended.)
        par_threshold: 2,
        ..common::test_options()
    }
}

/// Runs the exact engine and renders its result exactly as `bayonet run`
/// prints it: per-query results, the Z line, and the stats line.
fn run_and_render(source: &str, binding: Option<Rat>, opts: &ExactOptions) -> (Analysis, String) {
    let (model, scheduler) = build(source, binding);
    let analysis = analyze(&model, &*scheduler, opts).expect("example analyzes");
    let mut text = String::new();
    for q in &model.queries {
        let result = answer(&model, &analysis, q, opts.fm_pruning).expect("query answers");
        let _ = write!(text, "{result}");
    }
    let _ = writeln!(
        text,
        "Z = {} (discarded by observations: {})",
        analysis.total_terminal_mass(),
        analysis.total_discarded_mass()
    );
    let _ = writeln!(
        text,
        "[{} steps, {} expansions, peak {} configs, {} merge hits]",
        analysis.stats.steps,
        analysis.stats.expansions,
        analysis.stats.peak_configs,
        analysis.stats.merge_hits
    );
    (analysis, text)
}

/// Needs a concrete parameter binding to run under the exact engine
/// (symbolic arguments to `flip`/`uniformInt` are a semantic error).
fn needs_binding(source: &str) -> bool {
    let (model, scheduler) = build(source, None);
    matches!(
        analyze(&model, &*scheduler, &ExactOptions::default()),
        Err(bayonet_exact::ExactError::Semantics(_))
    )
}

/// Everything but `steals`, which is legitimately schedule-dependent.
fn deterministic_stats(a: &Analysis) -> (u64, u64, usize, u64, usize) {
    (
        a.stats.steps,
        a.stats.expansions,
        a.stats.peak_configs,
        a.stats.merge_hits,
        a.stats.terminal_configs,
    )
}

#[test]
fn every_example_is_bit_identical_across_thread_counts() {
    for (name, source) in example_sources() {
        let binding = needs_binding(&source).then(|| Rat::ratio(1, 4));
        let (baseline, baseline_text) = run_and_render(&source, binding.clone(), &options(1));
        assert_eq!(
            baseline.stats.steals, 0,
            "{name}: sequential runs never steal"
        );
        for threads in thread_matrix() {
            let (run, text) = run_and_render(&source, binding.clone(), &options(threads));
            assert_eq!(
                baseline.terminals, run.terminals,
                "{name}: terminals diverge at {threads} threads"
            );
            assert_eq!(
                baseline.discarded, run.discarded,
                "{name}: discarded mass diverges at {threads} threads"
            );
            assert_eq!(
                deterministic_stats(&baseline),
                deterministic_stats(&run),
                "{name}: stats diverge at {threads} threads"
            );
            assert_eq!(
                baseline_text, text,
                "{name}: rendered text diverges at {threads} threads"
            );
        }
    }
}

#[test]
fn symbolic_synthesis_is_bit_identical_across_thread_counts() {
    let source = fs::read_to_string(example_dir().join("ecmp_costs.bay")).expect("ecmp example");
    let synthesize = |threads: usize| -> String {
        let opts = options(threads);
        let (model, scheduler) = build(&source, None);
        let analysis = analyze(&model, &*scheduler, &opts).expect("analyzes");
        let result =
            answer(&model, &analysis, &model.queries[0], opts.fm_pruning).expect("answers");
        let synthesis = synthesize_result(
            &model,
            &result,
            SynthesisOptions {
                objective: Objective::Minimize,
                positive_params: true,
            },
        )
        .expect("synthesizes");
        format!("{synthesis:?}")
    };
    let baseline = synthesize(1);
    for threads in thread_matrix() {
        assert_eq!(
            baseline,
            synthesize(threads),
            "synthesis diverges at {threads} threads"
        );
    }
}

#[test]
fn pool_contention_degrades_gracefully_without_changing_results() {
    // Pool leases and work stealing are enumeration-engine machinery; pin
    // the engine so the `BAYONET_TEST_ENGINE=bdd` leg still exercises it.
    let options = |threads: usize| ExactOptions {
        engine: bayonet_exact::EngineKind::Enum,
        ..options(threads)
    };
    let source = fs::read_to_string(example_dir().join("gossip_k4.bay")).expect("gossip example");
    let (_, baseline_text) = run_and_render(&source, None, &options(1));

    // A busy pool: one slot total, and a standing lease hogging it, so the
    // request's lease grants zero extra workers.
    let pool = ComputePool::new(1);
    let hog = pool.lease(1);
    let starved = ExactOptions {
        pool: Some(pool.clone()),
        ..options(8)
    };
    let (_, starved_text) = run_and_render(&source, None, &starved);
    assert_eq!(baseline_text, starved_text);
    drop(hog);

    // An idle pool grants workers; results still match and the pool's
    // occupancy returns to zero once the run finishes.
    let relaxed = ExactOptions {
        pool: Some(pool.clone()),
        ..options(8)
    };
    let (run, relaxed_text) = run_and_render(&source, None, &relaxed);
    assert_eq!(baseline_text, relaxed_text);
    assert_eq!(pool.busy(), 0);
    // Three leases: the hog, the starved run's zero-slot grant, and the
    // relaxed run.
    assert_eq!(pool.stats().leases, 3);
    // With more chunk tasks than workers, stealing must actually happen —
    // proof the parallel path engaged.
    assert!(
        run.stats.steals > 0,
        "parallel expansion never stole a task"
    );
}
