//! Symbolic guards: conjunctions of sign constraints on linear expressions.
//!
//! When the exact engine evaluates a comparison whose operands contain
//! symbolic parameters, it forks the world three ways on the *sign* of the
//! difference (trichotomy) and records the assumed sign as an atom of the
//! current [`Guard`]. Guards are kept in a canonical form so that configs
//! reached under the same assumptions merge.

use std::collections::BTreeMap;
use std::fmt;

use bayonet_num::Sign;

use crate::linexpr::LinExpr;
use crate::param::ParamTable;

/// A conjunction of sign atoms `sign(expr) = s` over canonicalized linear
/// expressions. The empty guard is `true`.
///
/// # Examples
///
/// ```
/// use bayonet_symbolic::{Guard, LinExpr, ParamTable};
/// use bayonet_num::{Rat, Sign};
///
/// let mut t = ParamTable::new();
/// let x = LinExpr::param(t.intern("x"));
/// let g = Guard::top().assume_sign(&x, Sign::Plus).unwrap();
/// // x > 0 together with x < 0 is contradictory:
/// assert!(g.assume_sign(&x, Sign::Minus).is_none());
/// // x > 0 together with -2x < 0 is redundant:
/// let neg2x = x.scale(&Rat::int(-2));
/// assert_eq!(g.assume_sign(&neg2x, Sign::Minus), Some(g.clone()));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Guard {
    atoms: BTreeMap<LinExpr, Sign>,
}

impl Guard {
    /// The trivially true guard.
    pub fn top() -> Self {
        Guard::default()
    }

    /// Returns `true` if the guard has no atoms.
    pub fn is_top(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Returns `true` if the guard has no atoms.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Iterates over `(canonical expr, sign)` atoms.
    pub fn atoms(&self) -> impl Iterator<Item = (&LinExpr, Sign)> + '_ {
        self.atoms.iter().map(|(e, &s)| (e, s))
    }

    /// The sign of `expr` under this guard, if syntactically determined:
    /// either `expr` is constant, or its canonical form is already
    /// constrained by an atom.
    pub fn known_sign(&self, expr: &LinExpr) -> Option<Sign> {
        if let Some(c) = expr.as_constant() {
            return Some(c.sign());
        }
        let (canon, flipped) = expr.canonicalize();
        let s = *self.atoms.get(&canon)?;
        Some(if flipped { s.negate() } else { s })
    }

    /// Conjoins the assumption `sign(expr) = sign`. Returns the extended
    /// guard, or `None` if the assumption *syntactically* contradicts an
    /// existing atom or a constant expression. (Deeper contradictions are
    /// caught by [`feasibility`](crate::feasibility).)
    pub fn assume_sign(&self, expr: &LinExpr, sign: Sign) -> Option<Guard> {
        if let Some(c) = expr.as_constant() {
            return if c.sign() == sign {
                Some(self.clone())
            } else {
                None
            };
        }
        let (canon, flipped) = expr.canonicalize();
        let sign = if flipped { sign.negate() } else { sign };
        match self.atoms.get(&canon) {
            Some(&existing) if existing == sign => Some(self.clone()),
            Some(_) => None,
            None => {
                let mut out = self.clone();
                out.atoms.insert(canon, sign);
                Some(out)
            }
        }
    }

    /// Returns `true` if every atom of `self` appears in `other` with the
    /// same sign (i.e., `other` syntactically implies `self`).
    pub fn implied_by(&self, other: &Guard) -> bool {
        self.atoms
            .iter()
            .all(|(e, s)| other.atoms.get(e) == Some(s))
    }

    /// Conjunction of two guards; `None` on syntactic contradiction.
    pub fn conjoin(&self, other: &Guard) -> Option<Guard> {
        let mut out = self.clone();
        for (e, &s) in &other.atoms {
            match out.atoms.get(e) {
                Some(&existing) if existing != s => return None,
                Some(_) => {}
                None => {
                    out.atoms.insert(e.clone(), s);
                }
            }
        }
        Some(out)
    }

    /// Renders with parameter names from `table`.
    pub fn display<'a>(&'a self, table: &'a ParamTable) -> DisplayGuard<'a> {
        DisplayGuard { guard: self, table }
    }
}

/// Helper rendering a [`Guard`] with its parameter names.
pub struct DisplayGuard<'a> {
    guard: &'a Guard,
    table: &'a ParamTable,
}

impl fmt::Display for DisplayGuard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.guard.is_top() {
            return f.write_str("true");
        }
        let mut first = true;
        for (e, s) in self.guard.atoms() {
            if !first {
                f.write_str(" and ")?;
            }
            first = false;
            let op = match s {
                Sign::Minus => "<",
                Sign::Zero => "==",
                Sign::Plus => ">",
            };
            write!(f, "{} {} 0", e.display(self.table), op)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamTable;
    use bayonet_num::Rat;

    fn xy() -> (ParamTable, LinExpr, LinExpr) {
        let mut t = ParamTable::new();
        let x = LinExpr::param(t.intern("x"));
        let y = LinExpr::param(t.intern("y"));
        (t, x, y)
    }

    #[test]
    fn constant_assumptions_resolve_immediately() {
        let g = Guard::top();
        let five = LinExpr::constant(Rat::int(5));
        assert_eq!(g.assume_sign(&five, Sign::Plus), Some(g.clone()));
        assert_eq!(g.assume_sign(&five, Sign::Zero), None);
        assert_eq!(g.assume_sign(&five, Sign::Minus), None);
        let zero = LinExpr::zero();
        assert_eq!(g.assume_sign(&zero, Sign::Zero), Some(g.clone()));
    }

    #[test]
    fn scaled_expressions_share_one_atom() {
        let (_, x, y) = xy();
        let d = x.sub(&y); // x - y
        let g = Guard::top().assume_sign(&d, Sign::Plus).unwrap();
        assert_eq!(g.len(), 1);
        // 3(x - y) > 0 is the same atom.
        let d3 = d.scale(&Rat::int(3));
        assert_eq!(g.assume_sign(&d3, Sign::Plus), Some(g.clone()));
        // y - x < 0 is also the same atom (flipped).
        let rev = y.sub(&x);
        assert_eq!(g.assume_sign(&rev, Sign::Minus), Some(g.clone()));
        assert_eq!(g.assume_sign(&rev, Sign::Plus), None);
    }

    #[test]
    fn known_sign_through_flip() {
        let (_, x, y) = xy();
        let g = Guard::top().assume_sign(&x.sub(&y), Sign::Plus).unwrap();
        assert_eq!(g.known_sign(&x.sub(&y)), Some(Sign::Plus));
        assert_eq!(g.known_sign(&y.sub(&x)), Some(Sign::Minus));
        assert_eq!(g.known_sign(&x), None);
        assert_eq!(
            g.known_sign(&LinExpr::constant(Rat::int(-2))),
            Some(Sign::Minus)
        );
    }

    #[test]
    fn conjoin_and_implication() {
        let (_, x, y) = xy();
        let gx = Guard::top().assume_sign(&x, Sign::Plus).unwrap();
        let gy = Guard::top().assume_sign(&y, Sign::Minus).unwrap();
        let both = gx.conjoin(&gy).unwrap();
        assert_eq!(both.len(), 2);
        assert!(gx.implied_by(&both));
        assert!(gy.implied_by(&both));
        assert!(!both.implied_by(&gx));
        let gx_neg = Guard::top().assume_sign(&x, Sign::Minus).unwrap();
        assert_eq!(gx.conjoin(&gx_neg), None);
    }

    #[test]
    fn display_guard() {
        let (t, x, y) = xy();
        let g = Guard::top().assume_sign(&x.sub(&y), Sign::Zero).unwrap();
        assert_eq!(g.display(&t).to_string(), "x - y == 0");
        assert_eq!(Guard::top().display(&t).to_string(), "true");
    }
}
