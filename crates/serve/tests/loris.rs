//! Slow-loris and torn-request hardening for the event loop.
//!
//! The read deadline is fixed at accept — trickling bytes cannot extend
//! it — so a loris connection is killed with a `408` no matter how
//! diligently it drips. A half-closed connection with a truncated head
//! gets a `400`. A client that vanishes mid-streamed-batch cancels the
//! batch via the producer's `BrokenPipe` instead of wedging a worker.
//! After each abuse the suite proves the loop is still alive (a normal
//! request round-trips) and that no fd leaked (the
//! `bayonet_http_open_connections` gauge drains to the scraper's own 1).

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use bayonet_serve::{start, Json, ServerConfig};

mod common;
use common::{metric_value, GOSSIP_K4, TINY};

#[test]
fn slow_loris_trickle_times_out_without_wedging_the_loop() {
    let handle = start(ServerConfig {
        io_timeout: Duration::from_millis(600),
        ..common::test_config()
    })
    .expect("start server");
    let addr = handle.addr();

    // The loris: dribble one header byte at a time, forever. The writer
    // thread keeps dripping until the server hangs up on it.
    let mut conn = TcpStream::connect(addr).expect("loris connection");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = conn.try_clone().expect("clone for writer");
    let dripper = std::thread::spawn(move || {
        for byte in b"POST /v1/run HTTP/1.1\r\nHost: loris\r\nContent-Length: 999\r\nX-Drip: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
        {
            if writer.write_all(&[*byte]).is_err() {
                return; // server gave up on us — mission accomplished
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    });

    // The read deadline is anchored at accept, so the 408 arrives after
    // ~600 ms regardless of the dripping.
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read 408 response");
    assert!(raw.starts_with("HTTP/1.1 408"), "{raw}");
    assert!(raw.contains(r#""kind":"timeout""#), "{raw}");
    dripper.join().expect("dripper thread");

    // The loop is alive and the kill was accounted for.
    let (status, body) = common::post_run(addr, TINY);
    assert_eq!(status, 200, "loop wedged after loris: {body}");
    let metrics = common::metrics(addr);
    assert!(
        metric_value(&metrics, "bayonet_http_read_timeouts_total") >= 1.0,
        "{metrics}"
    );
    common::await_open_connections(addr, 1.0, Duration::from_secs(10));

    handle.shutdown();
}

#[test]
fn torn_request_head_answered_400_and_fd_reclaimed() {
    let handle = start(common::test_config()).expect("start server");
    let addr = handle.addr();

    // Send half a request head, then half-close: the server sees EOF with
    // an incomplete parse and must answer a clean 400, not hang waiting
    // for bytes that will never come (the default read deadline is 30 s —
    // far beyond this test's patience).
    let mut conn = TcpStream::connect(addr).expect("torn connection");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    conn.write_all(b"POST /v1/run HTTP/1.1\r\nHost: torn\r\nContent-Le")
        .expect("write torn head");
    conn.shutdown(Shutdown::Write).expect("half-close");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read 400 response");
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
    assert!(raw.contains("truncated request head"), "{raw}");
    drop(conn);

    // Same for a complete head whose body never fully arrives.
    let mut conn = TcpStream::connect(addr).expect("torn body connection");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    conn.write_all(b"POST /v1/run HTTP/1.1\r\nHost: torn\r\nContent-Length: 50\r\n\r\n{\"sou")
        .expect("write torn body");
    conn.shutdown(Shutdown::Write).expect("half-close");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read 400 response");
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
    drop(conn);

    // A bare probe (connect, say nothing, hang up) is not an error at
    // all — just a reclaimed fd.
    drop(TcpStream::connect(addr).expect("probe connection"));

    let (status, body) = common::post_run(addr, TINY);
    assert_eq!(status, 200, "loop wedged after torn requests: {body}");
    common::await_open_connections(addr, 1.0, Duration::from_secs(10));

    handle.shutdown();
}

#[test]
fn client_disconnect_mid_batch_cancels_cleanly() {
    let handle = start(ServerConfig {
        threads: 1,
        io_timeout: Duration::from_secs(30),
        ..common::test_config()
    })
    .expect("start server");
    let addr = handle.addr();

    // A streamed batch of slow items. The first item pins the worker for
    // ~3 s; the client vanishes long before the first frame is ready, so
    // the loop tears the connection down and the worker's next frame
    // write fails with `BrokenPipe` — cancelling the remaining items
    // instead of grinding through them for a dead client.
    let slow_item = |seed: u64| {
        format!(r#"{{"engine":"rejection","particles":2000000,"seed":{seed},"timeout_ms":3000}}"#)
    };
    let batch = format!(
        r#"{{"source":{},"items":[{},{},{}]}}"#,
        Json::Str(GOSSIP_K4.into()),
        slow_item(1),
        slow_item(2),
        slow_item(3)
    );
    let request = format!(
        "POST /v1/batch HTTP/1.1\r\nHost: gone\r\nContent-Length: {}\r\n\r\n{batch}",
        batch.len()
    );
    let mut conn = TcpStream::connect(addr).expect("batch connection");
    conn.write_all(request.as_bytes()).expect("write batch");
    std::thread::sleep(Duration::from_millis(500)); // let it dispatch
    drop(conn); // vanish

    // The worker must come free once the in-flight item's deadline fires:
    // a normal request succeeds well before three more items' worth of
    // grinding (~9 s) could have elapsed.
    let deadline = std::time::Instant::now() + Duration::from_secs(7);
    let (status, body) = loop {
        let resp = common::post_run(addr, TINY);
        if resp.0 == 200 || std::time::Instant::now() >= deadline {
            break resp;
        }
        std::thread::sleep(Duration::from_millis(100));
    };
    assert_eq!(status, 200, "worker never came back: {body}");
    common::await_open_connections(addr, 1.0, Duration::from_secs(10));

    handle.shutdown();
}
