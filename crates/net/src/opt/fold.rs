//! Constant folding, constant-guard folding, and loop-invariant hoisting.
//!
//! Everything here is justified against the interpreter in
//! [`crate::handler`]: a rewrite is admitted only when the original
//! evaluation is total on the folded operands (no error branch is lost) and
//! no `decide_sign` case split is added or removed (symbolic guard cells
//! must stay bit-identical). Parameters are never folded — passes must stay
//! binding-independent so batch items and sweep points share one optimized
//! model.

use std::sync::Arc;

use bayonet_lang::BinOp;
use bayonet_num::Rat;

use crate::compile::{CExpr, CStmt, CompiledProgram, Model};
use crate::handler::{apply_binop, NoChoiceDriver};
use crate::value::Val;

use super::OptReport;

/// Folds every program in the model, preserving `Arc` sharing (nodes that
/// shared a program before still share the rewritten one). Returns whether
/// anything changed.
pub(super) fn run(model: &mut Model, report: &mut OptReport) -> bool {
    let mut rewritten: Vec<(*const CompiledProgram, Arc<CompiledProgram>)> = Vec::new();
    let mut changed = false;
    for prog in &mut model.programs {
        let ptr = Arc::as_ptr(prog);
        if let Some((_, new)) = rewritten.iter().find(|(p, _)| *p == ptr) {
            *prog = new.clone();
            continue;
        }
        let new = fold_program(prog, report);
        let new_arc = match new {
            Some(p) => {
                changed = true;
                Arc::new(p)
            }
            None => prog.clone(),
        };
        rewritten.push((ptr, new_arc.clone()));
        *prog = new_arc;
    }
    changed
}

fn fold_program(p: &CompiledProgram, report: &mut OptReport) -> Option<CompiledProgram> {
    // Count rewrites only if the rebuild actually differs, so fixpoint
    // re-runs over an already-folded program report nothing.
    let mut scratch = OptReport::default();
    let new = CompiledProgram {
        name: p.name.clone(),
        state_names: p.state_names.clone(),
        state_init: p
            .state_init
            .iter()
            .map(|e| fold_expr(e, &mut scratch))
            .collect(),
        local_names: p.local_names.clone(),
        body: fold_block(&p.body, &mut scratch, true),
    };
    if new == *p {
        return None;
    }
    report.consts_folded += scratch.consts_folded;
    report.guards_folded += scratch.guards_folded;
    report.hoisted += scratch.hoisted;
    Some(new)
}

fn const_rat(e: &CExpr) -> Option<&Rat> {
    match e {
        CExpr::Const(r) => Some(r),
        _ => None,
    }
}

fn fold_expr(e: &CExpr, r: &mut OptReport) -> CExpr {
    match e {
        CExpr::Flip(p) => {
            let p2 = fold_expr(p, r);
            // flip(0) and flip(1) resolve without drawing (see
            // `ExecCx::eval`); other constants stay — flip(p) with p outside
            // [0, 1] must still error at runtime.
            if let Some(c) = const_rat(&p2) {
                if c.is_zero() || c.is_one() {
                    r.consts_folded += 1;
                    return p2;
                }
            }
            CExpr::Flip(Box::new(p2))
        }
        CExpr::UniformInt(lo, hi) => {
            let lo2 = fold_expr(lo, r);
            let hi2 = fold_expr(hi, r);
            // uniformInt(c, c) draws nothing; wider or invalid bounds keep
            // their runtime behavior (errors included).
            if let (Some(a), Some(b)) = (const_rat(&lo2), const_rat(&hi2)) {
                if let (Some(ia), Some(ib)) = (a.to_i64(), b.to_i64()) {
                    if ia == ib {
                        r.consts_folded += 1;
                        return CExpr::Const(Rat::int(ia));
                    }
                }
            }
            CExpr::UniformInt(Box::new(lo2), Box::new(hi2))
        }
        CExpr::Binary(op, a, b) => {
            let a2 = fold_expr(a, r);
            let b2 = fold_expr(b, r);
            // Short-circuit folds: the interpreter never evaluates the RHS
            // when the constant LHS decides the result, so dropping it is
            // exactly the original behavior.
            match op {
                BinOp::And => {
                    if let Some(c) = const_rat(&a2) {
                        if !c.is_true() {
                            r.consts_folded += 1;
                            return CExpr::Const(Rat::zero());
                        }
                    }
                }
                BinOp::Or => {
                    if let Some(c) = const_rat(&a2) {
                        if c.is_true() {
                            r.consts_folded += 1;
                            return CExpr::Const(Rat::one());
                        }
                    }
                }
                _ => {}
            }
            if let (Some(ca), Some(cb)) = (const_rat(&a2), const_rat(&b2)) {
                // Evaluate with the runtime's own operator; fold only on
                // success so division by zero (etc.) still errors at the
                // original site. Concrete operands never consult the driver.
                let av = Val::Rat(ca.clone());
                let bv = Val::Rat(cb.clone());
                if let Ok(v) = apply_binop(*op, &av, &bv, &mut NoChoiceDriver) {
                    if let Some(folded) = v.as_rat() {
                        r.consts_folded += 1;
                        return CExpr::Const(folded.clone());
                    }
                }
            }
            CExpr::Binary(*op, Box::new(a2), Box::new(b2))
        }
        CExpr::Not(x) => {
            let x2 = fold_expr(x, r);
            if let Some(c) = const_rat(&x2) {
                r.consts_folded += 1;
                return CExpr::Const(Rat::from_bool(!c.is_true()));
            }
            CExpr::Not(Box::new(x2))
        }
        CExpr::Neg(x) => {
            let x2 = fold_expr(x, r);
            if let Some(c) = const_rat(&x2) {
                r.consts_folded += 1;
                return CExpr::Const(-c);
            }
            CExpr::Neg(Box::new(x2))
        }
        // Param is deliberately never folded (binding independence); the
        // remaining leaves have nothing to fold.
        CExpr::Const(_)
        | CExpr::Param(_)
        | CExpr::State(_)
        | CExpr::Local(_)
        | CExpr::Field(_)
        | CExpr::Port => e.clone(),
    }
}

fn fold_block(stmts: &[CStmt], r: &mut OptReport, top_level: bool) -> Vec<CStmt> {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            CStmt::If(c, t, e) => {
                let c2 = fold_expr(c, r);
                let t2 = fold_block(t, r, false);
                let e2 = fold_block(e, r, false);
                if let Some(v) = const_rat(&c2) {
                    // Splice the taken branch. A `Skip` stands in for the
                    // `if` so tick counts are unchanged (the step limit
                    // makes them observable).
                    r.guards_folded += 1;
                    out.push(CStmt::Skip);
                    out.extend(if v.is_true() { t2 } else { e2 });
                } else {
                    out.push(CStmt::If(c2, t2, e2));
                }
            }
            CStmt::While(c, b) => {
                let c2 = fold_expr(c, r);
                let b2 = fold_block(b, r, false);
                if let Some(v) = const_rat(&c2) {
                    if !v.is_true() {
                        // Zero-iteration loop cost two ticks (statement +
                        // failing guard); two `Skip`s keep the count exact.
                        r.guards_folded += 1;
                        out.push(CStmt::Skip);
                        out.push(CStmt::Skip);
                        continue;
                    }
                    // while(true) is kept verbatim so the step-limit error
                    // fires exactly as before.
                }
                out.push(CStmt::While(c2, b2));
            }
            CStmt::Assert(e) => {
                let e2 = fold_expr(e, r);
                if let Some(v) = const_rat(&e2) {
                    if v.is_true() {
                        r.guards_folded += 1;
                        out.push(CStmt::Skip);
                        continue;
                    }
                    // assert(false) must keep failing at runtime.
                }
                out.push(CStmt::Assert(e2));
            }
            CStmt::Observe(e) => {
                let e2 = fold_expr(e, r);
                if let Some(v) = const_rat(&e2) {
                    if v.is_true() {
                        r.guards_folded += 1;
                        out.push(CStmt::Skip);
                        continue;
                    }
                    // observe(false) keeps killing the trace.
                }
                out.push(CStmt::Observe(e2));
            }
            CStmt::Fwd(e) => out.push(CStmt::Fwd(fold_expr(e, r))),
            CStmt::AssignState(slot, e) => out.push(CStmt::AssignState(*slot, fold_expr(e, r))),
            CStmt::AssignLocal(slot, e) => out.push(CStmt::AssignLocal(*slot, fold_expr(e, r))),
            CStmt::FieldAssign(field, e) => out.push(CStmt::FieldAssign(*field, fold_expr(e, r))),
            CStmt::New | CStmt::Drop | CStmt::Dup | CStmt::Skip => out.push(s.clone()),
        }
    }
    if top_level {
        hoist(&mut out, r);
    }
    out
}

/// Hoists a loop-invariant leading `AssignLocal` out of a top-level `while`.
///
/// Conditions (all checked, all required for exactness):
/// * the binding's RHS is built only from `Const`/`Param` with `+`, `-`,
///   unary `-`, and constant scaling — total (no error branch moves) and
///   concrete-or-linear (no `decide_sign`), and invariant because it reads
///   no state, locals, fields, or the packet;
/// * no other statement in the loop assigns the local, so every iteration
///   recomputes the same value the hoisted copy already holds;
/// * the loop guard does not read the local (the first guard evaluation
///   originally ran before the binding);
/// * nothing after the loop reads the local, so a zero-iteration loop that
///   originally left it unset diverges nowhere.
///
/// The binding moves in front of the loop and a `Skip` takes its place in
/// the body, so per-iteration tick counts are unchanged; the activation
/// costs one extra tick total, the single spot where this pipeline is not
/// exactly tick-neutral (a program would have to sit within one tick of
/// the 100 000-tick step limit to observe it).
fn hoist(seq: &mut Vec<CStmt>, r: &mut OptReport) {
    let mut i = 0;
    while i < seq.len() {
        let hoistable = match &seq[i] {
            CStmt::While(cond, body) => match body.first() {
                Some(CStmt::AssignLocal(l, e)) => {
                    invariant_total(e)
                        && !expr_reads_local(cond, *l)
                        && !body[1..].iter().any(|s| stmt_assigns_local(s, *l))
                        && !seq[i + 1..].iter().any(|s| stmt_reads_local(s, *l))
                }
                _ => false,
            },
            _ => false,
        };
        if hoistable {
            if let CStmt::While(cond, mut body) = seq.remove(i) {
                let binding = body.remove(0);
                body.insert(0, CStmt::Skip);
                seq.insert(i, binding);
                seq.insert(i + 1, CStmt::While(cond, body));
                r.hoisted += 1;
                i += 2;
                continue;
            }
        }
        i += 1;
    }
}

/// Loop-invariant and total: constants and parameters combined with
/// operators that can neither fail nor case-split.
fn invariant_total(e: &CExpr) -> bool {
    match e {
        CExpr::Const(_) | CExpr::Param(_) => true,
        CExpr::Neg(x) => invariant_total(x),
        CExpr::Binary(BinOp::Add | BinOp::Sub, a, b) => invariant_total(a) && invariant_total(b),
        // Multiplication is total only when one side is a literal constant
        // (constant × linear stays linear; symbolic × symbolic errors).
        CExpr::Binary(BinOp::Mul, a, b) => {
            (matches!(**a, CExpr::Const(_)) && invariant_total(b))
                || (matches!(**b, CExpr::Const(_)) && invariant_total(a))
        }
        _ => false,
    }
}

pub(super) fn expr_reads_local(e: &CExpr, l: usize) -> bool {
    match e {
        CExpr::Local(x) => *x == l,
        CExpr::Flip(a) | CExpr::Not(a) | CExpr::Neg(a) => expr_reads_local(a, l),
        CExpr::UniformInt(a, b) | CExpr::Binary(_, a, b) => {
            expr_reads_local(a, l) || expr_reads_local(b, l)
        }
        _ => false,
    }
}

fn stmt_reads_local(s: &CStmt, l: usize) -> bool {
    match s {
        CStmt::Fwd(e)
        | CStmt::AssignState(_, e)
        | CStmt::AssignLocal(_, e)
        | CStmt::FieldAssign(_, e)
        | CStmt::Assert(e)
        | CStmt::Observe(e) => expr_reads_local(e, l),
        CStmt::If(c, t, f) => {
            expr_reads_local(c, l)
                || t.iter().any(|s| stmt_reads_local(s, l))
                || f.iter().any(|s| stmt_reads_local(s, l))
        }
        CStmt::While(c, b) => expr_reads_local(c, l) || b.iter().any(|s| stmt_reads_local(s, l)),
        CStmt::New | CStmt::Drop | CStmt::Dup | CStmt::Skip => false,
    }
}

fn stmt_assigns_local(s: &CStmt, l: usize) -> bool {
    match s {
        CStmt::AssignLocal(x, _) => *x == l,
        CStmt::If(_, t, f) => {
            t.iter().any(|s| stmt_assigns_local(s, l)) || f.iter().any(|s| stmt_assigns_local(s, l))
        }
        CStmt::While(_, b) => b.iter().any(|s| stmt_assigns_local(s, l)),
        _ => false,
    }
}
