//! Regenerates the paper's **code-size comparison** (§5): Bayonet sources
//! are roughly 2× smaller than the generated PSI programs and ~10× smaller
//! than the generated WebPPL programs.
//!
//! Run with: `cargo run --release -p bayonet-bench --bin codesize`

use bayonet::{scenarios, Rat, Sched};
use bayonet_bench::loc;

fn main() -> Result<(), bayonet::Error> {
    println!("Code size (non-empty, non-comment lines)\n");
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "Benchmark", "Bayonet", "PSI", "WebPPL", "PSI/Bay", "WebPPL/Bay"
    );
    println!("{}", "-".repeat(80));

    let mut entries: Vec<(&str, bayonet::Network)> = vec![
        (
            "congestion (§2, 5 nodes)",
            scenarios::congestion_example(Sched::Uniform)?,
        ),
        (
            "congestion (6 nodes)",
            scenarios::congestion_chain(1, Sched::Uniform)?,
        ),
        (
            "reliability (6 nodes)",
            scenarios::reliability_chain(1, &Rat::ratio(1, 1000), Sched::Uniform)?,
        ),
        ("gossip (K4)", scenarios::gossip(4, Sched::Uniform)?),
        (
            "load balancing (§5.5)",
            scenarios::load_balancing(scenarios::LB_OBS_BAD)?,
        ),
        (
            "strategy inference (§5.5)",
            scenarios::reliability_strategy(&[1, 2, 3])?,
        ),
    ];

    for (name, network) in &mut entries {
        let bayonet_loc = loc(network.source());
        let psi_loc = loc(&network.to_psi());
        let webppl_loc = loc(&network.to_webppl());
        println!(
            "{:<28} {:>8} {:>8} {:>8} {:>9.1}x {:>9.1}x",
            name,
            bayonet_loc,
            psi_loc,
            webppl_loc,
            psi_loc as f64 / bayonet_loc as f64,
            webppl_loc as f64 / bayonet_loc as f64
        );
    }
    println!("\n(paper: PSI ≈ 2× and WebPPL ≈ 10× the Bayonet source size;");
    println!(" our WebPPL backend shares runtime helpers, so its ratio is lower)");
    Ok(())
}
