//! Sweep-vs-pointwise differential suite: [`bayonet_exact::sweep`] must be
//! **bit-for-bit identical** to independent pointwise runs at every grid
//! point — for every curated example, for 200 generated programs, at 1 and
//! 8 worker threads, and under every `BAYONET_TEST_ENGINE` leg
//! (`enum`/`bdd`/`auto`; the CI matrix runs all three).
//!
//! "Identical" means the rendered per-query results and the exact `Z` /
//! discarded-mass rationals. Engine statistics are deliberately excluded:
//! sharing work across points is the whole purpose of the sweep engine, so
//! its per-point expansion counts are *lower* than pointwise runs — that
//! saving is asserted separately (`shared_work_is_not_recounted`).

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use bayonet_exact::{analyze, answer, sweep, EngineKind, ExactOptions, SweepRoute};
use bayonet_lang::{parse, testgen::ProgramGen};
use bayonet_net::{compile, scheduler_for, Model};
use bayonet_num::Rat;
use bayonet_symbolic::ParamId;

mod common;

fn example_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/bay"))
}

fn example_sources() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = fs::read_dir(example_dir())
        .expect("examples/bay exists")
        .filter_map(|e| {
            let path = e.expect("dir entry").path();
            if path.extension().is_some_and(|ext| ext == "bay") {
                let name = path.file_name().unwrap().to_string_lossy().into_owned();
                Some((name, fs::read_to_string(&path).expect("readable example")))
            } else {
                None
            }
        })
        .collect();
    out.sort();
    assert!(!out.is_empty(), "no example programs found");
    out
}

/// Worker counts under test (the satellite matrix: sequential and crowded).
const THREADS: [usize; 2] = [1, 8];

fn options(threads: usize) -> ExactOptions {
    ExactOptions {
        threads,
        // Force the work-stealing path even on tiny frontiers so parallel
        // prefix replay is actually exercised (ignored by the bdd leg).
        par_threshold: 2,
        ..common::test_options()
    }
}

/// The grid: every declared parameter swept over `values`, full cartesian
/// product in row-major order (same construction the serve layer uses).
fn cartesian_grid(model: &Model, values: &[Rat]) -> (Vec<ParamId>, Vec<Vec<Rat>>) {
    let params: Vec<ParamId> = model.params.iter().collect();
    let mut points: Vec<Vec<Rat>> = vec![Vec::new()];
    for _ in &params {
        let mut next = Vec::with_capacity(points.len() * values.len());
        for prefix in &points {
            for v in values {
                let mut row = prefix.clone();
                row.push(v.clone());
                next.push(row);
            }
        }
        points = next;
    }
    (params, points)
}

/// Renders one point's outcome exactly as a pointwise `bayonet run` would
/// print it, minus the stats bracket (statistics are not pinned): per-query
/// results then the Z line. Errors render as `error: {message}` so error
/// identity is differential too.
fn render_outcome(results: Result<(Vec<String>, Rat, Rat), String>) -> String {
    match results {
        Ok((queries, z, discarded)) => {
            let mut text = String::new();
            for q in queries {
                let _ = write!(text, "{q}");
            }
            let _ = writeln!(text, "Z = {z} (discarded by observations: {discarded})");
            text
        }
        Err(e) => format!("error: {e}\n"),
    }
}

/// Independent pointwise run: bind the point, analyze from scratch, answer.
fn pointwise(
    base: &Model,
    params: &[ParamId],
    point: &[Rat],
    opts: &ExactOptions,
) -> Result<(Vec<String>, Rat, Rat), String> {
    let mut model = base.clone();
    for (id, value) in params.iter().zip(point) {
        let name = model.params.name(*id).to_string();
        model.bind_param(&name, value.clone()).expect("bindable");
    }
    let scheduler = scheduler_for(&model);
    let analysis = analyze(&model, &*scheduler, opts).map_err(|e| e.to_string())?;
    let mut rendered = Vec::with_capacity(model.queries.len());
    for q in &model.queries {
        rendered.push(
            answer(&model, &analysis, q, opts.fm_pruning)
                .map_err(|e| e.to_string())?
                .to_string(),
        );
    }
    Ok((
        rendered,
        analysis.total_terminal_mass(),
        analysis.total_discarded_mass(),
    ))
}

/// Runs the sweep and the per-point baselines and asserts byte identity.
fn assert_sweep_matches_pointwise(label: &str, source: &str, values: &[Rat]) {
    let model = compile(&parse(source).expect("parses")).expect("compiles");
    let (params, points) = cartesian_grid(&model, values);
    for threads in THREADS {
        let opts = options(threads);
        let result = sweep(&model, &params, &points, &opts)
            .unwrap_or_else(|e| panic!("{label}: sweep failed globally: {e}"));
        assert_eq!(result.points.len(), points.len(), "{label}");
        for (i, (point, got)) in points.iter().zip(&result.points).enumerate() {
            let got_rendered = render_outcome(match got {
                Ok(p) => Ok((
                    p.results.iter().map(|r| r.to_string()).collect(),
                    p.z.clone(),
                    p.discarded.clone(),
                )),
                Err(e) => Err(e.to_string()),
            });
            let want_rendered = render_outcome(pointwise(&model, &params, point, &opts));
            assert_eq!(
                got_rendered, want_rendered,
                "{label}: sweep diverges from pointwise at point {i} \
                 ({point:?}), {threads} threads, route {:?}",
                result.route
            );
        }
    }
}

#[test]
fn every_example_matches_pointwise_across_grid_and_threads() {
    // 1/4 and 1/2 are valid for every declared parameter in the curated
    // set: probabilities for `lossy_link`'s P_LOSS, plain rationals for
    // cost/threshold parameters. Parameter-free examples degenerate to a
    // single-point sweep, which must still match the direct run.
    let values = [Rat::ratio(1, 4), Rat::ratio(1, 2)];
    for (name, source) in example_sources() {
        assert_sweep_matches_pointwise(&name, &source, &values);
    }
}

#[test]
fn generated_programs_match_pointwise_across_grid_and_threads() {
    // 200 seeded programs with the `PT` parameter in the query threshold
    // and (seed-dependent) in a forwarding decision — covering the fully
    // shared, prefix-forked, and symbolic-cell routes.
    let values = [Rat::int(0), Rat::int(1), Rat::int(2)];
    for seed in 0..200 {
        let source = ProgramGen::new_parameterized(seed).generate();
        assert_sweep_matches_pointwise(&format!("seed {seed}"), &source, &values);
    }
}

/// The point of the sweep engine: shared work is counted once. For a sweep
/// whose handlers never read the parameter, per-point engine work must be
/// zero and the shared run must be charged exactly once.
#[test]
fn shared_work_is_not_recounted() {
    let source =
        fs::read_to_string(example_dir().join("gossip_k4_sweep.bay")).expect("sweep example");
    let model = compile(&parse(&source).unwrap()).unwrap();
    let (params, points) = cartesian_grid(&model, &[Rat::int(1), Rat::int(2), Rat::int(3)]);
    // Work sharing is an enumerative-engine property; the bdd backend
    // legitimately re-sweeps per point, so this test pins the engine rather
    // than inheriting the BAYONET_TEST_ENGINE leg. Passes are pinned off
    // too: symmetry canonicalization is gated off on the sweep's symbolic
    // shared exploration but on for a bound pointwise run, which would
    // skew the stats-equality comparison below (posteriors stay identical
    // either way — that is pinned by the matching tests above).
    let opts = ExactOptions {
        engine: EngineKind::Enum,
        passes: false,
        ..options(1)
    };
    let result = sweep(&model, &params, &points, &opts).unwrap();
    assert!(
        matches!(result.route, SweepRoute::Symbolic | SweepRoute::Prefix),
        "handlers never read K, so the exploration must be shared (got {:?})",
        result.route
    );
    assert!(result.shared_steps > 0);
    assert_eq!(result.reused_points(), points.len() - 1);

    // Shared stats equal one pointwise exploration; per-point work is zero.
    let mut bound = model.clone();
    bound.bind_param("K", Rat::int(2)).unwrap();
    let scheduler = scheduler_for(&bound);
    let single = analyze(&bound, &*scheduler, &opts).unwrap();
    assert_eq!(result.prefix_stats.steps, single.stats.steps);
    assert_eq!(result.prefix_stats.expansions, single.stats.expansions);
    for point in &result.points {
        assert_eq!(point.as_ref().unwrap().stats.expansions, 0);
    }
}
