//! Shared helpers for the serve integration suites (and, via `#[path]`
//! inclusion, the core crate's serve-facing suites): one HTTP exchange
//! helper, Prometheus metric scraping, chunked-response decoding, and
//! batch-frame parsing, so every suite asserts against the same parsing
//! logic instead of five private copies.
#![allow(dead_code)] // each test binary uses a different subset

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bayonet_serve::{parse_json, Json, ServerConfig};

/// A tiny two-node program: one probabilistic forward, one query, answer
/// 1/3. Shared by validation, persistence, and service suites.
pub const TINY: &str = r#"
    packet_fields { dst }
    topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
    programs { A -> send, B -> recv }
    init { packet -> (A, pt1); }
    query probability(got@B == 1);
    def send(pkt, pt) { if flip(1/3) { fwd(1); } else { drop; } }
    def recv(pkt, pt) state got(0) { got = 1; drop; }
"#;

/// [`TINY`] with the receive probability lifted into a parameter `P` read
/// by the *receiver*: the sender's exploration steps never consult `P`, so
/// a parameter sweep over `P` shares them as a prefix and forks only at
/// the receiver. Answer: P/3 for any bound P.
pub const TINY_PARAM: &str = r#"
    packet_fields { dst }
    parameters { P }
    topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
    programs { A -> send, B -> recv }
    init { packet -> (A, pt1); }
    query probability(got@B == 1);
    def send(pkt, pt) { if flip(1/3) { fwd(1); } else { drop; } }
    def recv(pkt, pt) state got(0) { if flip(P) { got = 1; } drop; }
"#;

/// Gossip on K4 (examples/bay/gossip_k4.bay): heavy enough that a 1 ms
/// deadline reliably expires mid-exploration and the work-stealing
/// expander engages.
pub const GOSSIP_K4: &str = r#"
    packet_fields { dst }
    topology {
        nodes { S0, S1, S2, S3 }
        links {
            (S0, pt1) <-> (S1, pt1), (S0, pt2) <-> (S2, pt1),
            (S0, pt3) <-> (S3, pt1), (S1, pt2) <-> (S2, pt2),
            (S1, pt3) <-> (S3, pt2), (S2, pt3) <-> (S3, pt3)
        }
    }
    programs { S0 -> seed, S1 -> gossip, S2 -> gossip, S3 -> gossip }
    init { packet -> (S0, pt1); }
    query expectation(infected@S0 + infected@S1 + infected@S2 + infected@S3);
    def seed(pkt, pt) state infected(0) {
        if infected == 0 { infected = 1; fwd(uniformInt(1, 3)); }
        else { drop; }
    }
    def gossip(pkt, pt) state infected(0) {
        if infected == 0 {
            infected = 1;
            dup;
            fwd(uniformInt(1, 3));
            fwd(uniformInt(1, 3));
        } else { drop; }
    }
"#;

/// A `ServerConfig` on an ephemeral port, with the persistent cache
/// enabled when `BAYONET_TEST_CACHE_DIR` is set (non-empty): every suite
/// then exercises the exact same assertions with and without a disk-backed
/// cache — persistence must never change observable behavior. Each call
/// gets a fresh unique directory so suites and tests stay isolated.
pub fn test_config() -> ServerConfig {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    };
    match std::env::var("BAYONET_TEST_CACHE_DIR") {
        Ok(root) if !root.is_empty() => {
            config.cache_dir = Some(PathBuf::from(root).join(format!(
                "serve-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            )));
        }
        _ => {}
    }
    config
}

/// Worker-thread count for stress legs: `BAYONET_TEST_THREADS` when set
/// (the CI matrix runs 1 and 8), else 4.
pub fn test_threads() -> usize {
    std::env::var("BAYONET_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

/// A fresh, unique directory under the system temp dir.
pub fn unique_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bayonet-test-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A real out-of-process server: the `bayonet-served` binary, spawned so
/// a suite's client fds and the server's fds come out of separate process
/// budgets (a 10k-connection stress run needs both sides near the soft
/// `RLIMIT_NOFILE`). The spawner holds the child's stdin as a lifeline:
/// EOF there is the shutdown order, so a panicking test never leaks a
/// server process past its own exit.
pub struct Served {
    child: Child,
    pub addr: SocketAddr,
}

impl Served {
    /// Spawns `exe` (pass `env!("CARGO_BIN_EXE_bayonet-served")`) with
    /// `args` and scrapes the `BAYONET_SERVE_ADDR` announcement.
    pub fn spawn(exe: &str, args: &[&str]) -> Served {
        let mut child = Command::new(exe)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn bayonet-served");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout);
        let mut line = String::new();
        lines
            .read_line(&mut line)
            .expect("read address announcement");
        let addr = line
            .trim()
            .strip_prefix("BAYONET_SERVE_ADDR ")
            .and_then(|a| a.parse().ok())
            .unwrap_or_else(|| panic!("bad server announcement: {line:?}"));
        // Keep draining stdout so the child can never block on a full pipe.
        std::thread::spawn(move || {
            let mut sink = [0u8; 4096];
            while matches!(lines.read(&mut sink), Ok(n) if n > 0) {}
        });
        Served { child, addr }
    }

    /// Orders a graceful shutdown (EOF on stdin) and reaps the child,
    /// killing it if it ignores the order for ten seconds.
    pub fn stop(mut self) {
        drop(self.child.stdin.take());
        for _ in 0..100 {
            if matches!(self.child.try_wait(), Ok(Some(_))) {
                return;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Polls `/metrics` until the `bayonet_http_open_connections` gauge drains
/// to exactly `want` — the fd-leak check. `want` is normally `1.0`: the
/// scraping connection itself is open while the gauge is rendered.
pub fn await_open_connections(addr: SocketAddr, want: f64, within: Duration) {
    let deadline = Instant::now() + within;
    loop {
        let text = metrics(addr);
        let open = metric_value(&text, "bayonet_http_open_connections");
        if open == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "open-connections gauge stuck at {open}, want {want} — leaked fds:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// One-shot HTTP exchange: returns `(status, head, payload)`. The payload
/// is returned raw — chunked responses keep their framing (see
/// [`decode_chunked`]).
pub fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(request.as_bytes()).expect("write request");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let (head, payload) = raw
        .split_once("\r\n\r\n")
        .expect("response has a head/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, head.to_string(), payload.to_string())
}

/// The canonical `/v1/run` body for a bare source.
pub fn run_body(source: &str) -> String {
    Json::obj(vec![("source", Json::Str(source.into()))]).to_string()
}

/// POSTs a bare-source `/v1/run` and returns `(status, payload)`.
pub fn post_run(addr: SocketAddr, source: &str) -> (u16, String) {
    let (status, _, payload) = http(addr, "POST", "/v1/run", &run_body(source));
    (status, payload)
}

/// Scrapes `/metrics`.
pub fn metrics(addr: SocketAddr) -> String {
    let (status, _, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200, "{body}");
    body
}

/// Value of a plain `name value` Prometheus line as an integer; panics
/// when absent.
pub fn metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|line| line.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("metric {name} missing from:\n{text}"))
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("metric {name} not an integer: {e}"))
}

/// Value of a plain `name value` Prometheus line as a float; panics when
/// absent.
pub fn metric_value(text: &str, name: &str) -> f64 {
    text.lines()
        .find_map(|l| {
            l.strip_prefix(name)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or_else(|| panic!("metric {name} missing:\n{text}"))
}

/// Decodes a chunked transfer-encoded payload into the logical body,
/// asserting the framing is well-formed throughout: hex chunk sizes, CRLF
/// terminators, and the final zero-length chunk. A truncated stream — the
/// failure mode the batch endpoint must never produce on the success path —
/// panics here.
pub fn decode_chunked(payload: &str) -> String {
    let mut rest = payload;
    let mut out = String::new();
    loop {
        let (size_line, tail) = rest
            .split_once("\r\n")
            .unwrap_or_else(|| panic!("missing chunk-size line in {rest:?}"));
        let size = usize::from_str_radix(size_line.trim(), 16)
            .unwrap_or_else(|e| panic!("bad chunk size {size_line:?}: {e}"));
        if size == 0 {
            assert!(
                tail.is_empty() || tail == "\r\n",
                "bytes after the terminal chunk: {tail:?}"
            );
            return out;
        }
        assert!(
            tail.len() >= size + 2,
            "truncated chunk: want {size} bytes, have {}",
            tail.len()
        );
        out.push_str(&tail[..size]);
        assert_eq!(&tail[size..size + 2], "\r\n", "chunk not CRLF-terminated");
        rest = &tail[size + 2..];
    }
}

/// One parsed `/v1/batch` NDJSON frame. `body` keeps the item's raw
/// response bytes verbatim, so byte-identity with `/v1/run` can be
/// asserted directly.
pub struct BatchFrame {
    pub index: u64,
    pub status: u16,
    pub body: String,
}

/// Splits an NDJSON batch body into frames.
pub fn parse_frames(ndjson: &str) -> Vec<BatchFrame> {
    ndjson
        .lines()
        .map(|line| {
            let doc = parse_json(line).unwrap_or_else(|e| panic!("bad frame {line:?}: {e}"));
            let index = doc
                .get("index")
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("frame without index: {line}"));
            let status = doc
                .get("status")
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("frame without status: {line}"))
                as u16;
            let start = line.find(",\"body\":").expect("frame body") + ",\"body\":".len();
            let body = line[start..line.len() - 1].to_string();
            BatchFrame {
                index,
                status,
                body,
            }
        })
        .collect()
}

/// POSTs a `/v1/batch` request. On 200 the chunked framing is verified and
/// decoded; the returned payload is the logical NDJSON body. Validation
/// errors come back buffered (`Content-Length`), so they are returned
/// as-is.
pub fn post_batch(addr: SocketAddr, body: &str) -> (u16, String) {
    let (status, head, payload) = http(addr, "POST", "/v1/batch", body);
    if status == 200 {
        assert!(
            head.contains("Transfer-Encoding: chunked"),
            "batch success must stream chunked: {head}"
        );
        (status, decode_chunked(&payload))
    } else {
        assert!(
            !head.contains("Transfer-Encoding: chunked"),
            "batch errors must be buffered: {head}"
        );
        (status, payload)
    }
}
