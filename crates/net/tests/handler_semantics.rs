//! Direct tests of the local small-step semantics (paper Figure 5), driving
//! `run_handler` with a scripted choice driver.

use bayonet_lang::parse;
use bayonet_net::{
    compile, run_handler, ChoiceDriver, HandlerOutcome, Model, NodeConfig, Packet, SemanticsError,
    Val,
};
use bayonet_num::{Rat, Sign};
use bayonet_symbolic::LinExpr;

/// A driver that replays a fixed script of outcomes and panics when the
/// handler draws more (or different) randomness than scripted.
#[derive(Debug, Default)]
struct Scripted {
    flips: Vec<bool>,
    uniforms: Vec<i64>,
    consumed_flips: usize,
    consumed_uniforms: usize,
}

impl Scripted {
    fn flips(outcomes: &[bool]) -> Self {
        Scripted {
            flips: outcomes.to_vec(),
            ..Default::default()
        }
    }
}

impl ChoiceDriver for Scripted {
    fn flip(&mut self, _p: &Rat) -> Result<bool, SemanticsError> {
        let v = self.flips[self.consumed_flips];
        self.consumed_flips += 1;
        Ok(v)
    }

    fn uniform_int(&mut self, _lo: i64, _hi: i64) -> Result<i64, SemanticsError> {
        let v = self.uniforms[self.consumed_uniforms];
        self.consumed_uniforms += 1;
        Ok(v)
    }

    fn decide_sign(&mut self, _e: &LinExpr) -> Result<Sign, SemanticsError> {
        panic!("no symbolic values in these tests");
    }
}

/// Compiles a two-node model whose node 0 runs the given handler body.
fn model_with(body: &str, state: &str) -> Model {
    let state_clause = if state.is_empty() {
        String::new()
    } else {
        format!("state {state}")
    };
    let src = format!(
        r#"
        packet_fields {{ f, g }}
        topology {{ nodes {{ A, B }} links {{ (A, pt1) <-> (B, pt1) }} }}
        programs {{ A -> a, B -> b }}
        queue_capacity 2;
        init {{ packet -> (A, pt1); }}
        query probability(1 == 1);
        def a(pkt, pt) {state_clause} {{ {body} }}
        def b(pkt, pt) {{ drop; }}
        "#
    );
    compile(&parse(&src).unwrap()).unwrap()
}

/// A node config holding `n` packets (tagged by field 0) on port 1.
fn config_with_packets(model: &Model, n: usize) -> NodeConfig {
    let mut cfg = NodeConfig::empty(model.queue_capacity);
    for i in 0..n {
        let mut pkt = Packet::fresh(model.num_fields());
        pkt.set_field(0, Val::int(i as i64));
        cfg.q_in.push_back((pkt, 1));
    }
    cfg
}

#[test]
fn l_new_prepends_fresh_packet_with_port_zero() {
    let m = model_with("new; drop;", "");
    let mut cfg = config_with_packets(&m, 1);
    // new prepends (head), then drop removes that fresh head.
    let out = run_handler(&m, 0, &mut cfg, &mut Scripted::default()).unwrap();
    assert_eq!(out, HandlerOutcome::Completed);
    assert_eq!(cfg.q_in.len(), 1);
    // The survivor is the original packet.
    assert_eq!(*cfg.q_in.head().unwrap().0.field(0), Val::int(0));
}

#[test]
fn l_new_on_full_queue_drops_silently() {
    let m = model_with("new; drop;", "");
    let mut cfg = config_with_packets(&m, 2); // capacity 2: full
    run_handler(&m, 0, &mut cfg, &mut Scripted::default()).unwrap();
    // new was a no-op; drop removed the original head (tag 0).
    assert_eq!(cfg.q_in.len(), 1);
    assert_eq!(*cfg.q_in.head().unwrap().0.field(0), Val::int(1));
}

#[test]
fn l_drop_requires_a_packet() {
    let m = model_with("drop; drop;", "");
    let mut cfg = config_with_packets(&m, 1);
    let err = run_handler(&m, 0, &mut cfg, &mut Scripted::default()).unwrap_err();
    assert!(matches!(err, SemanticsError::EmptyQueue { node: 0 }));
}

#[test]
fn l_dup_duplicates_head_in_place() {
    let m = model_with("dup; pkt.f = 99; fwd(1); drop;", "");
    let mut cfg = config_with_packets(&m, 1);
    run_handler(&m, 0, &mut cfg, &mut Scripted::default()).unwrap();
    // The duplicate got f=99 and was forwarded; the original was dropped.
    assert!(cfg.q_in.is_empty());
    assert_eq!(cfg.q_out.len(), 1);
    assert_eq!(*cfg.q_out.head().unwrap().0.field(0), Val::int(99));
}

#[test]
fn l_fwd_retags_departure_port() {
    let m = model_with("fwd(1);", "");
    let mut cfg = config_with_packets(&m, 1);
    run_handler(&m, 0, &mut cfg, &mut Scripted::default()).unwrap();
    let (_, port) = cfg.q_out.head().unwrap();
    assert_eq!(*port, 1);
    assert!(cfg.q_in.is_empty());
}

#[test]
fn fwd_to_full_output_queue_drops() {
    let m = model_with("fwd(1); fwd(1); fwd(1);", "");
    let mut cfg = config_with_packets(&m, 2);
    // Third fwd needs a third input packet; give it one more over capacity?
    // Capacity 2 input: only 2 packets; third fwd errors on empty queue.
    let err = run_handler(&m, 0, &mut cfg, &mut Scripted::default()).unwrap_err();
    assert!(matches!(err, SemanticsError::EmptyQueue { .. }));
    // Both delivered entries fit exactly in the output queue (capacity 2).
    assert_eq!(cfg.q_out.len(), 2);
}

#[test]
fn pkt_field_reads_and_writes_head() {
    let m = model_with("pkt.g = pkt.f + 10; fwd(1);", "");
    let mut cfg = config_with_packets(&m, 2);
    run_handler(&m, 0, &mut cfg, &mut Scripted::default()).unwrap();
    assert_eq!(*cfg.q_out.head().unwrap().0.field(1), Val::int(10));
    // Second packet untouched.
    assert_eq!(*cfg.q_in.head().unwrap().0.field(1), Val::int(0));
}

#[test]
fn pt_reads_arrival_port() {
    let m = model_with("seen = pt; drop;", "seen(0)");
    let mut cfg = config_with_packets(&m, 1);
    cfg.state = vec![Val::int(0)];
    run_handler(&m, 0, &mut cfg, &mut Scripted::default()).unwrap();
    assert_eq!(cfg.state[0], Val::int(1));
}

#[test]
fn assert_failure_stops_the_handler() {
    let m = model_with("x = 1; assert(x == 2); x = 3; drop;", "last(0)");
    let mut cfg = config_with_packets(&m, 1);
    cfg.state = vec![Val::int(0)];
    let out = run_handler(&m, 0, &mut cfg, &mut Scripted::default()).unwrap();
    assert_eq!(out, HandlerOutcome::AssertFailed);
    // The packet was NOT consumed (handler stopped mid-body).
    assert_eq!(cfg.q_in.len(), 1);
}

#[test]
fn observe_failure_reports_discard() {
    let m = model_with("observe(pt == 7); drop;", "");
    let mut cfg = config_with_packets(&m, 1);
    let out = run_handler(&m, 0, &mut cfg, &mut Scripted::default()).unwrap();
    assert_eq!(out, HandlerOutcome::ObserveFailed);
}

#[test]
fn degenerate_flips_do_not_consult_the_driver() {
    // flip(0) and flip(1) resolve deterministically; the empty script would
    // panic if the driver were consulted.
    let m = model_with(
        "if flip(1) { a = 1; } if flip(0) { a = 2; } else { a = 3; } drop;",
        "",
    );
    let mut cfg = config_with_packets(&m, 1);
    run_handler(&m, 0, &mut cfg, &mut Scripted::default()).unwrap();
}

#[test]
fn degenerate_uniform_does_not_consult_the_driver() {
    let m = model_with("x = uniformInt(3, 3); fwd(x - 2);", "");
    let mut cfg = config_with_packets(&m, 1);
    run_handler(&m, 0, &mut cfg, &mut Scripted::default()).unwrap();
    assert_eq!(cfg.q_out.len(), 1);
}

#[test]
fn short_circuit_skips_rhs_draws() {
    // `flip(1/2) or flip(1/2)`: when the first flip is true, the second is
    // never drawn (script has exactly one outcome).
    let m = model_with("if flip(1/2) or flip(1/2) { drop; } else { fwd(1); }", "");
    let mut cfg = config_with_packets(&m, 1);
    let mut driver = Scripted::flips(&[true]);
    run_handler(&m, 0, &mut cfg, &mut driver).unwrap();
    assert_eq!(driver.consumed_flips, 1);
    assert!(cfg.q_in.is_empty());
}

#[test]
fn while_loop_executes_and_terminates() {
    let m = model_with(
        "n = 3; total = 0; while n > 0 { total = total + n; n = n - 1; } s = total; drop;",
        "s(0)",
    );
    let mut cfg = config_with_packets(&m, 1);
    cfg.state = vec![Val::int(0)];
    run_handler(&m, 0, &mut cfg, &mut Scripted::default()).unwrap();
    assert_eq!(cfg.state[0], Val::int(6));
}

#[test]
fn diverging_loop_hits_the_limit() {
    let m = model_with("while 1 == 1 { skip; }", "");
    let mut cfg = config_with_packets(&m, 1);
    let err = run_handler(&m, 0, &mut cfg, &mut Scripted::default()).unwrap_err();
    assert!(matches!(err, SemanticsError::LoopLimitExceeded { .. }));
}

#[test]
fn division_by_zero_is_a_hard_error() {
    let m = model_with("x = pt - 1; y = 5 / x; drop;", "");
    let mut cfg = config_with_packets(&m, 1); // pt = 1 so x = 0
    let err = run_handler(&m, 0, &mut cfg, &mut Scripted::default()).unwrap_err();
    assert!(matches!(err, SemanticsError::DivisionByZero));
}

#[test]
fn fwd_with_invalid_port_value_errors() {
    let m = model_with("fwd(0 - 3);", "");
    let mut cfg = config_with_packets(&m, 1);
    let err = run_handler(&m, 0, &mut cfg, &mut Scripted::default()).unwrap_err();
    assert!(matches!(err, SemanticsError::PortNotInteger(_)));
}

#[test]
fn locals_are_transient_state_is_persistent() {
    let m = model_with("x = s + 1; s = x; drop;", "s(0)");
    let mut cfg = config_with_packets(&m, 2);
    cfg.state = vec![Val::int(0)];
    run_handler(&m, 0, &mut cfg, &mut Scripted::default()).unwrap();
    assert_eq!(cfg.state[0], Val::int(1));
    // Second run: local x starts fresh, state persists.
    run_handler(&m, 0, &mut cfg, &mut Scripted::default()).unwrap();
    assert_eq!(cfg.state[0], Val::int(2));
}
