//! Regenerates the **§5.5 Bayesian-reasoning results**: the load-balancing
//! bad-hash posterior (Figure 11(d)) and the forwarding-strategy posteriors
//! (Figure 13).
//!
//! Run with: `cargo run --release -p bayonet-bench --bin sec55`

use std::time::Instant;

use bayonet::scenarios::{
    bad_hash_posterior, load_balancing, reliability_strategy, strategy_posterior, LB_OBS_BAD,
    LB_OBS_GOOD,
};

fn main() -> Result<(), bayonet::Error> {
    println!("§5.5 — Bayesian reasoning using observations\n");

    println!("Probability of a bad ECMP hash (prior 1/10):");
    for (obs, paper) in [(LB_OBS_BAD, "0.152"), (LB_OBS_GOOD, "0.004 †")] {
        let t0 = Instant::now();
        let network = load_balancing(obs)?;
        let posterior = bad_hash_posterior(&network)?;
        println!(
            "  mirrors {obs:?}\n    P(bad | evidence) = {} ≈ {:.4}   (paper {paper})   [{:.2?}]",
            posterior,
            posterior.to_f64(),
            t0.elapsed()
        );
    }
    println!("  † the paper does not specify its sub-sampling constant; we use 1/2,");
    println!("    which reproduces the first experiment exactly (see EXPERIMENTS.md).\n");

    println!("Posterior over S0's forwarding strategy (priors 1/2, 1/4, 1/4):");
    for (obs, paper) in [
        (vec![1u64, 3], "(1, 0, 0)"),
        (vec![1, 2, 3], "(0.4383, 0.2810, 0.2807)"),
    ] {
        let t0 = Instant::now();
        let network = reliability_strategy(&obs)?;
        let post = strategy_posterior(&network)?;
        println!(
            "  arrivals {obs:?}\n    (rand, det S1, det S2) = ({:.4}, {:.4}, {:.4})   (paper {paper})   [{:.2?}]",
            post[0].to_f64(),
            post[1].to_f64(),
            post[2].to_f64(),
            t0.elapsed()
        );
        println!("    exact: {} / {} / {}", post[0], post[1], post[2]);
    }
    Ok(())
}
