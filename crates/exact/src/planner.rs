//! Static cost-model query planner: predict inference cost, pick the engine.
//!
//! The paper fixes its inference strategy per experiment (exact enumeration,
//! or sampling with a fixed 1000 particles). This module does what Batz et
//! al.'s *expected sampling time* analysis does for sampling — estimate the
//! cost of a run **before** starting it — but for all three of our engines,
//! from nothing more than the compiled [`Model`]:
//!
//! * **Enumeration** cost is driven by frontier growth. Each global step
//!   multiplies the frontier by the scheduler's branching (how many enabled
//!   actions it splits mass over) times the handlers' internal branching
//!   (`flip` ×2, `uniform(lo, hi)` ×span), then configuration merging
//!   collapses most of that product back down. Calibrated against the
//!   curated corpus, the *effective* per-step growth is well modeled as
//!   `(sched_branching × handler_branching) ^ ALPHA` with `ALPHA ≈ 0.2` —
//!   merging absorbs roughly the 0.8 power of the raw product. Total
//!   expansions are the geometric sum of that growth over the step horizon
//!   (the program's `num_steps`, else `4·nodes + 2` — the paper's generated
//!   programs use horizons linear in the node count), and each expansion
//!   costs a calibrated constant (~10 µs on the reference host).
//! * **BDD** (knowledge compilation) wins when nodes share a program: the
//!   diagram represents the symmetric product once. The calibrated speedup
//!   over enumeration is approximately the size of the largest group of
//!   nodes sharing one [`CompiledProgram`], paid for with a constant
//!   compilation overhead — so tiny programs route to enumeration even when
//!   symmetric. The backend packs per-node flags into a `u128`, so models
//!   with more than 64 nodes are never routed to it.
//! * **SMC** cost is linear: `particles × horizon × nodes` simulation steps.
//!   Rather than the paper's fixed 1000 particles, the planner picks an
//!   error-bounded count from the worst-case Bernoulli variance:
//!   `n = ⌈0.25 / target_std_error²⌉` (a posterior probability estimated
//!   from `n` particles has standard error at most `0.5/√n`). Symbolic
//!   parameters rule SMC out — sampling cannot produce piecewise results.
//!
//! The planner prefers exact engines (the cheaper of enumeration and BDD)
//! whenever the estimate fits the budget, falls back to SMC when exact
//! inference would blow the deadline (or the no-deadline cutover), and
//! reports [`PlanDecision::Infeasible`] when nothing fits — turning deadline
//! handling from "interrupt at timeout" into "don't start what can't
//! finish". The decision is a pure function of the model and config, so
//! auto-routing is deterministic and safe to bake into cache keys.

use std::fmt::Write as _;
use std::time::Duration;

use bayonet_net::opt::model_facts;
use bayonet_net::{Model, SchedKind};

use crate::engine::EngineKind;

/// Damping exponent applied to the raw per-step branching product:
/// configuration merging absorbs most of the raw growth. Fitted on the
/// curated corpus (gossip_k4 raw ≈ 15 → effective 1.70, gossip_k5 raw ≈ 26
/// → effective 1.93; both fit `raw^0.2` within a few percent).
const ALPHA: f64 = 0.2;

/// Tuning knobs for the cost model. The defaults are calibrated on the
/// reference host (see `docs/PERFORMANCE.md` § Planner); they only steer
/// routing and admission — posteriors never depend on them.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Wall-clock cost of one enumeration expansion (calibrated ~10 µs:
    /// measured 3–40 µs across the corpus, dominated by handler
    /// re-enumeration and exact arithmetic).
    pub ns_per_expansion: u64,
    /// Wall-clock cost of one node-step of one particle in the SMC engine.
    pub ns_per_particle_step: u64,
    /// Constant compilation overhead of the BDD backend (store setup,
    /// variable ordering, first-diagram construction).
    pub bdd_base_ns: u64,
    /// With no request deadline, exact estimates above this cutover route
    /// to SMC instead (default 60 s — matches the paper's experiments,
    /// which switch to sampling when exact inference stops terminating
    /// "within hours").
    pub smc_cutover_ns: u64,
    /// Target standard error for SMC posterior estimates; the particle
    /// count is `⌈0.25 / target_std_error²⌉` clamped to
    /// [`PlannerConfig::min_particles`]..[`PlannerConfig::max_particles`].
    /// Default 0.015 → 1112 particles (vs the paper's fixed 1000).
    pub target_std_error: f64,
    /// Lower clamp on the error-bounded particle count.
    pub min_particles: usize,
    /// Upper clamp on the error-bounded particle count.
    pub max_particles: usize,
    /// Per-step frontier cap used in the geometric sum (mirrors
    /// `ExactOptions::max_configs`: growth cannot exceed the config limit).
    pub max_frontier: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            ns_per_expansion: 10_000,
            ns_per_particle_step: 2_000,
            bdd_base_ns: 10_000_000,
            smc_cutover_ns: 60_000_000_000,
            target_std_error: 0.015,
            min_particles: 100,
            max_particles: 100_000,
            max_frontier: 4_000_000.0,
        }
    }
}

/// The engine a [`Plan`] routes to. Unlike [`EngineKind`] this includes the
/// sampling engine, which lives above the exact crate (in `bayonet-approx`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanEngine {
    /// Parallel exact enumeration ([`EngineKind::Enum`]).
    Enum,
    /// Knowledge compilation ([`EngineKind::Bdd`]).
    Bdd,
    /// Sequential Monte Carlo with an error-bounded particle count.
    Smc,
}

impl PlanEngine {
    /// Engine name as used by the serve API and CLI.
    pub fn name(self) -> &'static str {
        match self {
            PlanEngine::Enum => "enum",
            PlanEngine::Bdd => "bdd",
            PlanEngine::Smc => "smc",
        }
    }
}

/// What the planner decided to do with the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanDecision {
    /// Run this engine; the estimate fits the budget.
    Run(PlanEngine),
    /// No engine's estimate fits the deadline budget: reject before doing
    /// any engine work. Carries the cheapest estimate so the caller can say
    /// how much time the request *would* need.
    Infeasible {
        /// Estimated cost of the cheapest eligible engine, in nanoseconds.
        needed_ns: u64,
    },
}

/// The raw signals the cost model extracted from the compiled program.
/// Exposed for `--explain-plan` and the golden tests.
#[derive(Debug, Clone)]
pub struct PlanSignals {
    /// Topology node count.
    pub nodes: usize,
    /// Topology link count (undirected).
    pub links: usize,
    /// Input/output queue capacity bound.
    pub queue_capacity: usize,
    /// Scheduler-step horizon: the program's `num_steps`, else `4·nodes+2`.
    pub horizon: u64,
    /// `flip` sites across all distinct programs.
    pub flip_sites: usize,
    /// `uniform` sites across all distinct programs.
    pub uniform_sites: usize,
    /// `dup` sites (each grows queue occupancy, lengthening the run).
    pub dup_sites: usize,
    /// Scheduler branching factor (probabilistic schedulers split mass).
    pub sched_branching: f64,
    /// Mean complete-execution count of one handler run (flip ×2,
    /// uniform ×span, averaged over nodes).
    pub handler_branching: f64,
    /// Effective per-step frontier growth after merging:
    /// `(sched × handler) ^ 0.2`.
    pub effective_branching: f64,
    /// Size of the largest group of nodes sharing one program `Arc` — the
    /// symmetry the BDD backend exploits (0 when no sharing).
    pub shared_program_nodes: usize,
    /// Order of the model's automorphism group, from the pass pipeline
    /// (1 when the model is unoptimized or the group is trivial). Orbit
    /// canonicalization divides the explored frontier by up to this factor.
    pub symmetry_group_order: u64,
    /// Size of the largest node orbit under that group (0 when trivial).
    /// When present this replaces the Arc-sharing heuristic as the BDD
    /// backend's structure-sharing signal: it is the *proven* count of
    /// interchangeable nodes, not a syntactic proxy.
    pub symmetry_largest_orbit: usize,
    /// Whether unbound symbolic parameters remain (rules out SMC).
    pub symbolic_params: bool,
}

/// A routing decision with its supporting estimates.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The decision: an engine to run, or an up-front rejection.
    pub decision: PlanDecision,
    /// Estimated total enumeration expansions over the horizon.
    pub est_expansions: u64,
    /// Estimated cost of the chosen engine (of the cheapest one when
    /// infeasible), in nanoseconds.
    pub est_cost_ns: u64,
    /// Estimated enumeration cost, in nanoseconds.
    pub est_enum_ns: u64,
    /// Estimated BDD cost; `None` when the backend is ineligible
    /// (>64 nodes, or no program sharing to exploit).
    pub est_bdd_ns: Option<u64>,
    /// Estimated SMC cost; `None` when symbolic parameters rule it out.
    pub est_smc_ns: Option<u64>,
    /// Error-bounded particle count for the SMC route (present whenever SMC
    /// is eligible, whether or not it was chosen).
    pub particles: Option<usize>,
    /// The extracted signals.
    pub signals: PlanSignals,
    /// The deadline budget the decision was made against, if any.
    pub budget_ns: Option<u64>,
}

impl Plan {
    /// The chosen engine, if the plan is feasible.
    pub fn engine(&self) -> Option<PlanEngine> {
        match self.decision {
            PlanDecision::Run(e) => Some(e),
            PlanDecision::Infeasible { .. } => None,
        }
    }

    /// Multi-line human-readable rendering (the CLI's `--explain-plan`).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        match self.decision {
            PlanDecision::Run(e) => {
                let _ = writeln!(
                    out,
                    "plan: engine={} est_cost={} est_expansions={} budget={}",
                    e.name(),
                    fmt_ns(self.est_cost_ns),
                    self.est_expansions,
                    self.budget_ns.map_or("unlimited".into(), fmt_ns),
                );
            }
            PlanDecision::Infeasible { needed_ns } => {
                let _ = writeln!(
                    out,
                    "plan: infeasible — cheapest engine needs {} but budget is {}",
                    fmt_ns(needed_ns),
                    self.budget_ns.map_or("unlimited".into(), fmt_ns),
                );
            }
        }
        let s = &self.signals;
        let _ = writeln!(
            out,
            "  signals: nodes={} links={} queue_capacity={} horizon={} \
             flips={} uniforms={} dups={} sched_branching={:.1} \
             handler_branching={:.2} effective_branching={:.3} \
             shared_program_nodes={} symmetry_order={} symmetry_orbit={} \
             symbolic_params={}",
            s.nodes,
            s.links,
            s.queue_capacity,
            s.horizon,
            s.flip_sites,
            s.uniform_sites,
            s.dup_sites,
            s.sched_branching,
            s.handler_branching,
            s.effective_branching,
            s.shared_program_nodes,
            s.symmetry_group_order,
            s.symmetry_largest_orbit,
            s.symbolic_params,
        );
        let _ = writeln!(
            out,
            "  estimates: enum={} bdd={} smc={}",
            fmt_ns(self.est_enum_ns),
            self.est_bdd_ns
                .map_or("ineligible".into(), |ns| fmt_ns(ns).to_string()),
            match (self.est_smc_ns, self.particles) {
                (Some(ns), Some(p)) => format!("{} ({p} particles)", fmt_ns(ns)),
                _ => "ineligible (symbolic params)".into(),
            },
        );
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.1}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}us", ns as f64 / 1e3)
    }
}

/// Extracts the cost-model signals from a compiled model.
///
/// An optimized model (see [`bayonet_net::opt::optimize`]) carries its
/// facts in [`bayonet_net::opt::OptInfo`], gathered once by the pass
/// pipeline — extraction is then a field read, fixing the old
/// plan-then-analyze double traversal. Unoptimized models fall back to
/// [`model_facts`], the *same* implementation the pipeline uses, so the
/// two paths cannot diverge.
pub fn extract_signals(model: &Model) -> PlanSignals {
    let nodes = model.num_nodes();
    let fallback;
    let (facts, symmetry) = match model.opt_info() {
        Some(info) => (&info.facts, info.symmetry.as_ref()),
        None => {
            fallback = model_facts(model);
            (&fallback, None)
        }
    };
    let (symmetry_group_order, symmetry_largest_orbit) = match symmetry {
        Some(g) => (g.order() as u64, g.largest_orbit()),
        None => (1, 0),
    };
    let sched_branching = match model.scheduler {
        SchedKind::Uniform | SchedKind::Weighted(_) => 2.0,
        SchedKind::Deterministic | SchedKind::Rotor => 1.0,
    };
    let handler_branching = facts.handler_branching;
    PlanSignals {
        nodes,
        links: model.links().count() / 2,
        queue_capacity: model.queue_capacity,
        horizon: model.num_steps.unwrap_or(4 * nodes as u64 + 2),
        flip_sites: facts.flip_sites,
        uniform_sites: facts.uniform_sites,
        dup_sites: facts.dup_sites,
        sched_branching,
        handler_branching,
        effective_branching: (sched_branching * handler_branching).powf(ALPHA).max(1.0),
        shared_program_nodes: facts.shared_program_nodes,
        symmetry_group_order,
        symmetry_largest_orbit,
        symbolic_params: model.has_symbolic_params(),
    }
}

/// Builds a [`Plan`] for `model` under an optional deadline budget.
///
/// The decision is a pure function of `(model, cfg, budget)` — no clocks,
/// no randomness — so the same request always routes to the same engine and
/// the choice can be baked into result-cache keys.
pub fn plan_model(model: &Model, cfg: &PlannerConfig, budget: Option<Duration>) -> Plan {
    let signals = extract_signals(model);

    // Geometric frontier growth over the horizon, capped per step.
    let b = signals.effective_branching;
    let mut est_expansions = 0.0f64;
    let mut frontier = 1.0f64;
    for _ in 0..signals.horizon.min(100_000) {
        frontier = (frontier * b).min(cfg.max_frontier);
        est_expansions += frontier;
        if est_expansions > 1e15 {
            break;
        }
    }
    // Orbit canonicalization merges symmetric frontier configurations, so
    // a non-trivial automorphism group divides the explored frontier by up
    // to its order.
    let est_expansions = if signals.symmetry_group_order > 1 {
        (est_expansions / signals.symmetry_group_order as f64).max(1.0)
    } else {
        est_expansions.max(1.0)
    };
    let est_enum_ns = (est_expansions * cfg.ns_per_expansion as f64).min(1e18) as u64;

    // BDD: eligible under the u128 packing bound and only worth the base
    // overhead when there is structure sharing to exploit. A proven orbit
    // from the pass pipeline overrides the Arc-sharing proxy.
    let shared = if signals.symmetry_largest_orbit >= 2 {
        signals.symmetry_largest_orbit
    } else {
        signals.shared_program_nodes
    };
    let est_bdd_ns =
        (signals.nodes <= 64 && shared >= 2).then(|| est_enum_ns / shared as u64 + cfg.bdd_base_ns);

    // SMC: error-bounded particle count from worst-case Bernoulli variance.
    let (est_smc_ns, particles) = if signals.symbolic_params {
        (None, None)
    } else {
        let n = (0.25 / (cfg.target_std_error * cfg.target_std_error)).ceil() as usize;
        let n = n.clamp(cfg.min_particles, cfg.max_particles);
        let steps = signals.horizon.max(1) * signals.nodes.max(1) as u64;
        (
            Some(
                (n as u64)
                    .saturating_mul(steps)
                    .saturating_mul(cfg.ns_per_particle_step),
            ),
            Some(n),
        )
    };

    // Route: prefer the cheaper exact engine when it fits the budget (or
    // the no-deadline cutover); fall back to SMC; reject when nothing fits.
    let exact_best_ns = est_bdd_ns.map_or(est_enum_ns, |b| b.min(est_enum_ns));
    let exact_engine = match est_bdd_ns {
        Some(b) if b < est_enum_ns => PlanEngine::Bdd,
        _ => PlanEngine::Enum,
    };
    let budget_ns = budget.map(|d| d.as_nanos().min(u64::MAX as u128) as u64);
    let exact_limit = budget_ns.unwrap_or(cfg.smc_cutover_ns);
    let decision = if exact_best_ns <= exact_limit {
        PlanDecision::Run(exact_engine)
    } else {
        match est_smc_ns {
            Some(smc) if budget_ns.is_none_or(|b| smc <= b) => PlanDecision::Run(PlanEngine::Smc),
            _ => PlanDecision::Infeasible {
                needed_ns: est_smc_ns.map_or(exact_best_ns, |s| s.min(exact_best_ns)),
            },
        }
    };
    let est_cost_ns = match decision {
        PlanDecision::Run(PlanEngine::Enum) => est_enum_ns,
        PlanDecision::Run(PlanEngine::Bdd) => est_bdd_ns.unwrap_or(est_enum_ns),
        PlanDecision::Run(PlanEngine::Smc) => est_smc_ns.unwrap_or(est_enum_ns),
        PlanDecision::Infeasible { needed_ns } => needed_ns,
    };

    Plan {
        decision,
        est_expansions: est_expansions.min(1e18) as u64,
        est_cost_ns,
        est_enum_ns,
        est_bdd_ns,
        est_smc_ns,
        particles,
        signals,
        budget_ns,
    }
}

/// Resolves [`EngineKind::Auto`] to a concrete exact backend. Used by
/// [`crate::analyze`] so auto mode works everywhere an `ExactOptions`
/// travels; the SMC route only exists above this crate (in serve/CLI),
/// which call [`plan_model`] directly.
pub fn choose_exact(model: &Model) -> EngineKind {
    let plan = plan_model(model, &PlannerConfig::default(), None);
    match plan.engine() {
        Some(PlanEngine::Bdd) => EngineKind::Bdd,
        _ => EngineKind::Enum,
    }
}
