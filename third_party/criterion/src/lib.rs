//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small benchmarking surface it uses: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input` / `finish`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a simple mean over `sample_size`
//! iterations after one warm-up — adequate for tracking relative
//! regressions, with none of criterion's statistics.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Times `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = Some(start.elapsed());
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        run_one("", id, self.sample_size, f);
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count used for each benchmark in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&self.name, id, self.sample_size, f);
        self
    }

    /// Times one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.name, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, iters: u64, mut f: F) {
    let mut bencher = Bencher {
        iters: iters.max(1),
        elapsed: None,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match bencher.elapsed {
        Some(total) => {
            let per_iter = total / bencher.iters as u32;
            println!(
                "bench {label:<48} {per_iter:>12.2?}/iter ({} iters)",
                bencher.iters
            );
        }
        None => println!("bench {label:<48} (closure never called iter)"),
    }
}

/// Declares a function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchers_run_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| runs += 1);
        });
        // One warm-up + three timed iterations.
        assert_eq!(runs, 4);
        group.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &x| {
            b.iter(|| assert_eq!(x, 7));
        });
        group.finish();
    }
}
