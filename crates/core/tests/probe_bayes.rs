//! Exploratory probes for the §5.5 Bayesian scenarios (run with
//! --ignored --nocapture); results recorded in EXPERIMENTS.md.

use bayonet::scenarios::{
    bad_hash_posterior, load_balancing, reliability_strategy, strategy_posterior, LB_OBS_BAD,
    LB_OBS_GOOD,
};

#[test]
#[ignore = "exploratory probe"]
fn probe_strategy_posteriors() {
    for (name, obs) in [("obs (1,3)", vec![1u64, 3]), ("obs (1,2,3)", vec![1, 2, 3])] {
        let t0 = std::time::Instant::now();
        let n = reliability_strategy(&obs).unwrap();
        let post = strategy_posterior(&n).unwrap();
        println!(
            "{name}: rand={:.4} detS1={:.4} detS2={:.4}  ({:?})",
            post[0].to_f64(),
            post[1].to_f64(),
            post[2].to_f64(),
            t0.elapsed()
        );
        println!(
            "  exact: rand={} detS1={} detS2={}",
            post[0], post[1], post[2]
        );
    }
}

#[test]
#[ignore = "exploratory probe"]
fn probe_load_balancing_posteriors() {
    for (name, obs) in [("bad-ish", LB_OBS_BAD), ("good-ish", LB_OBS_GOOD)] {
        let t0 = std::time::Instant::now();
        let n = load_balancing(obs).unwrap();
        let post = bad_hash_posterior(&n).unwrap();
        println!(
            "{name} {obs:?}: P(bad_hash | evidence) = {} ≈ {:.4}  ({:?})",
            post,
            post.to_f64(),
            t0.elapsed()
        );
    }
}
