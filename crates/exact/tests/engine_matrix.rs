//! Engine-matrix differential: the `bayonet-bdd` knowledge-compilation
//! backend must produce **bit-for-bit identical** posteriors to frontier
//! enumeration — same terminals in the same order, same discarded mass per
//! guard, same `steps`/`expansions`/`peak_configs`, and byte-identical
//! rendered query results — across {enum, bdd} × {1, 8} threads, over every
//! curated example and 200 generated programs.
//!
//! `merge_hits` is deliberately excluded: the backends count merges at
//! different granularities (configurations vs. diagrams), which is
//! documented engine-specific behavior.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use bayonet_exact::{analyze, answer, Analysis, EngineKind, ExactError, ExactOptions};
use bayonet_lang::parse;
use bayonet_lang::testgen::ProgramGen;
use bayonet_net::{compile, scheduler_for, Model, Scheduler};
use bayonet_num::Rat;

mod common;

const SEEDS: u64 = 200;
const THREADS: [usize; 2] = [1, 8];

fn example_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/bay"))
}

fn example_sources() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = fs::read_dir(example_dir())
        .expect("examples/bay exists")
        .filter_map(|e| {
            let path = e.expect("dir entry").path();
            if path.extension().is_some_and(|ext| ext == "bay") {
                let name = path.file_name().unwrap().to_string_lossy().into_owned();
                Some((name, fs::read_to_string(&path).expect("readable example")))
            } else {
                None
            }
        })
        .collect();
    out.sort();
    assert!(!out.is_empty(), "no example programs found");
    out
}

fn build(source: &str, binding: Option<&Rat>) -> (Model, Box<dyn Scheduler>) {
    let program = parse(source).expect("program parses");
    let mut model = compile(&program).expect("program compiles");
    if let Some(value) = binding {
        let names: Vec<String> = model
            .params
            .iter()
            .map(|id| model.params.name(id).to_string())
            .collect();
        for name in names {
            model.bind_param(&name, value.clone()).expect("bindable");
        }
    }
    let scheduler = scheduler_for(&model);
    (model, scheduler)
}

fn options(engine: EngineKind, threads: usize) -> ExactOptions {
    ExactOptions {
        engine,
        threads,
        // Force the work-stealing path for the enumeration engine even on
        // tiny frontiers; the diagram backend ignores both knobs.
        par_threshold: 2,
        ..ExactOptions::default()
    }
}

/// Runs one engine and renders the posterior exactly as `bayonet run`
/// prints it, *without* the engine-specific stats line.
fn run(
    source: &str,
    binding: Option<&Rat>,
    opts: &ExactOptions,
) -> Result<(Analysis, String), ExactError> {
    let (model, scheduler) = build(source, binding);
    let analysis = analyze(&model, &*scheduler, opts)?;
    let mut text = String::new();
    for q in &model.queries {
        let result = answer(&model, &analysis, q, opts.fm_pruning).expect("query answers");
        let _ = write!(text, "{result}");
    }
    let _ = writeln!(
        text,
        "Z = {} (discarded by observations: {})",
        analysis.total_terminal_mass(),
        analysis.total_discarded_mass()
    );
    Ok((analysis, text))
}

/// Everything deterministic that both backends promise to agree on
/// (`merge_hits` and `steals` excluded, see the module docs).
fn shared_stats(a: &Analysis) -> (u64, u64, usize, usize) {
    (
        a.stats.steps,
        a.stats.expansions,
        a.stats.peak_configs,
        a.stats.terminal_configs,
    )
}

/// Asserts the full matrix agrees on one program; returns whether the
/// program analyzed successfully (vs. erroring identically everywhere).
fn assert_matrix_agrees(name: &str, source: &str, binding: Option<&Rat>) -> bool {
    let baseline = run(source, binding, &options(EngineKind::Enum, 1));
    match baseline {
        Ok((base_analysis, base_text)) => {
            for threads in THREADS {
                for engine in [EngineKind::Enum, EngineKind::Bdd] {
                    let (a, text) =
                        run(source, binding, &options(engine, threads)).unwrap_or_else(|e| {
                            panic!("{name}: {engine:?}/{threads} errored against Ok baseline: {e}")
                        });
                    assert_eq!(
                        base_analysis.terminals, a.terminals,
                        "{name}: terminals diverge under {engine:?}/{threads}"
                    );
                    assert_eq!(
                        base_analysis.discarded, a.discarded,
                        "{name}: discarded mass diverges under {engine:?}/{threads}"
                    );
                    assert_eq!(
                        shared_stats(&base_analysis),
                        shared_stats(&a),
                        "{name}: stats diverge under {engine:?}/{threads}"
                    );
                    assert_eq!(
                        base_text, text,
                        "{name}: rendered posterior diverges under {engine:?}/{threads}"
                    );
                }
            }
            true
        }
        Err(base_err) => {
            // Both backends must reject the same programs with the same
            // rendered error.
            for threads in THREADS {
                for engine in [EngineKind::Enum, EngineKind::Bdd] {
                    let err = run(source, binding, &options(engine, threads))
                        .map(|_| ())
                        .unwrap_err();
                    assert_eq!(
                        base_err.to_string(),
                        err.to_string(),
                        "{name}: error diverges under {engine:?}/{threads}"
                    );
                }
            }
            false
        }
    }
}

#[test]
fn every_example_agrees_across_the_engine_matrix() {
    let binding = Rat::ratio(1, 4);
    let mut analyzed = 0u32;
    for (name, source) in example_sources() {
        // Programs with symbolic `flip` parameters need a concrete binding;
        // run them both ways so the unbound error path is matrixed too.
        if assert_matrix_agrees(&name, &source, None) {
            analyzed += 1;
        } else {
            assert!(
                assert_matrix_agrees(&name, &source, Some(&binding)),
                "{name}: still errors with parameters bound"
            );
            analyzed += 1;
        }
    }
    assert!(analyzed >= 3, "expected at least 3 analyzable examples");
}

#[test]
fn generated_programs_agree_across_the_engine_matrix() {
    let mut nontrivial = 0u32;
    for seed in 0..SEEDS {
        let source = ProgramGen::new(seed).generate();
        if assert_matrix_agrees(&format!("seed {seed}"), &source, None) {
            let (a, _) = run(&source, None, &options(EngineKind::Enum, 1)).expect("just ran");
            if a.terminals.len() > 1 {
                nontrivial += 1;
            }
        }
    }
    assert!(
        nontrivial >= 20,
        "generator degenerated: only {nontrivial} nontrivial programs"
    );
}
