//! Perf-regression harness: the trajectory every perf PR is judged against.
//!
//! Times each pipeline phase — parse, compile, enumerate, query, synthesis —
//! over the curated `examples/bay` corpus plus generated scaling programs,
//! and emits a JSON report with per-phase medians over N trials and machine
//! info. Every workload is enumerated by **both** exact backends — frontier
//! enumeration and the `bayonet-bdd` knowledge-compilation engine — with the
//! FNV-1a answer digests asserted equal, so the report doubles as a
//! bit-identity witness while exposing the per-engine wall-clock trade-off
//! (`enumerate_ns` vs. `bdd_enumerate_ns`, summarized as `bdd_speedup`).
//! A dedicated parameter-sweep workload (`gossip_k4_sweep16`) times a
//! 16-point grid both as independent pointwise runs and as one `sweep()`
//! call, asserts their digests identical, and reports the shared-prefix
//! speedup (`pointwise_ns` vs. `sweep_ns`, summarized as `sweep_speedup`);
//! both phases are gated by `--check` alongside the enumerate phases.
//! The report is self-validated by re-parsing it with the same JSON
//! parser the service uses, so CI can gate on "harness ran and produced
//! well-formed output" without gating on wall-clock numbers.
//!
//! Run with:
//!   cargo run --release -p bayonet-bench --bin regress -- --out BENCH_5.json
//!
//! Flags:
//!   --quick          single trial over the curated corpus only (CI smoke)
//!   --trials N       median over N trials (default 5)
//!   --out PATH       write the report to PATH (always printed to stdout)
//!   --baseline PATH  embed a prior report under "baseline" and compute
//!                    per-workload enumerate-phase speedups
//!   --check PATH     CI regression gate: exit 1 when any enumerate-phase
//!                    median (either backend) regresses more than 25% vs.
//!                    the committed baseline at PATH. Tune with
//!                    BAYONET_BENCH_TOLERANCE / BAYONET_BENCH_STRICT (see
//!                    `bayonet_bench::gate`).

use std::sync::Arc;
use std::time::Instant;

use bayonet::{parse, scenarios, Network, Rat, Sched};
use bayonet_bench::gate;
use bayonet_exact::{
    analyze, answer, answer_cached, sweep, synthesize_result, EngineKind, ExactOptions,
    FeasibilityCache, Objective, SynthesisOptions,
};
use bayonet_net::scheduler_for;
use bayonet_serve::{parse_json, Json};

struct Workload {
    name: &'static str,
    source: String,
    bindings: Vec<(&'static str, Rat)>,
    synthesize: bool,
}

/// One trial's phase timings (nanoseconds) plus determinism evidence.
/// The `bdd_*` fields come from re-enumerating the same compiled model
/// under the knowledge-compilation backend; `run_trial` asserts its
/// digest matches the enumeration digest before returning.
#[derive(Default)]
struct Trial {
    parse_ns: u64,
    compile_ns: u64,
    enumerate_ns: u64,
    query_ns: u64,
    bdd_enumerate_ns: u64,
    bdd_query_ns: u64,
    synthesis_ns: Option<u64>,
    feasibility_hits: u64,
    feasibility_misses: u64,
    answer_digest: u64,
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// FNV-1a over the rendered answers: a compact fingerprint proving the
/// posteriors are byte-identical between baseline and current runs.
fn fnv1a(acc: u64, text: &str) -> u64 {
    let mut h = if acc == 0 { 0xcbf2_9ce4_8422_2325 } else { acc };
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn examples_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/bay")
}

fn curated(name: &'static str, file: &str) -> Workload {
    let path = examples_dir().join(file);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    Workload {
        name,
        source,
        bindings: Vec::new(),
        synthesize: false,
    }
}

fn workloads(quick: bool) -> Vec<Workload> {
    let mut ws = vec![
        Workload {
            bindings: vec![("P_LOSS", Rat::ratio(1, 4))],
            ..curated("lossy_link", "lossy_link.bay")
        },
        Workload {
            synthesize: true,
            ..curated("ecmp_costs", "ecmp_costs.bay")
        },
        curated("gossip_k4", "gossip_k4.bay"),
        curated("ttl_triangle", "ttl_triangle.bay"),
        Workload {
            bindings: vec![("P_LOSS", Rat::ratio(1, 4))],
            ..curated("fattree_k4", "fattree_k4.bay")
        },
        curated("firewall_nat", "firewall_nat.bay"),
    ];
    if !quick {
        ws.push(Workload {
            name: "reliability_chain_4",
            source: scenarios::reliability_chain_source(4, &Rat::ratio(1, 1000), Sched::Uniform),
            bindings: Vec::new(),
            synthesize: false,
        });
        ws.push(Workload {
            name: "congestion_chain_7",
            source: scenarios::congestion_chain_source(7, Sched::Deterministic),
            bindings: Vec::new(),
            synthesize: false,
        });
        ws.push(Workload {
            name: "gossip_k4_generated",
            source: scenarios::gossip_source(4, Sched::Uniform),
            bindings: Vec::new(),
            synthesize: false,
        });
        // The structured workload where knowledge compilation pulls away
        // from enumeration (~5-7x); deliberately not in --quick, since the
        // enumeration side alone takes tens of seconds per trial.
        ws.push(Workload {
            name: "gossip_k5_generated",
            source: scenarios::gossip_source(5, Sched::Uniform),
            bindings: Vec::new(),
            synthesize: false,
        });
    }
    ws
}

/// One engine's share of a trial: analyze, answer every query, and (when
/// the workload asks) synthesize — all timed, all folded into one digest.
struct EnginePass {
    enumerate_ns: u64,
    query_ns: u64,
    synthesis_ns: Option<u64>,
    feasibility_hits: u64,
    feasibility_misses: u64,
    digest: u64,
}

fn engine_pass(network: &Network, w: &Workload, engine: EngineKind) -> EnginePass {
    // One feasibility memo table per pass, shared across analyze and
    // query answering — the same sharing the serve request path uses.
    let cache = Arc::new(FeasibilityCache::new());
    let opts = ExactOptions {
        engine,
        feasibility_cache: Some(Arc::clone(&cache)),
        ..ExactOptions::default()
    };
    let start = Instant::now();
    let analysis = analyze(network.model(), network.scheduler(), &opts).expect("analyze");
    let enumerate_ns = start.elapsed().as_nanos() as u64;

    let start = Instant::now();
    let mut results = Vec::new();
    for q in network.queries() {
        results.push(
            answer_cached(network.model(), &analysis, q, opts.fm_pruning, Some(&cache))
                .expect("answer"),
        );
    }
    let query_ns = start.elapsed().as_nanos() as u64;
    let (feasibility_hits, feasibility_misses) = cache.counts();
    let mut digest = 0u64;
    for r in &results {
        digest = fnv1a(digest, &r.to_string());
    }

    let mut synthesis_ns = None;
    if w.synthesize {
        let sopts = SynthesisOptions {
            objective: Objective::Maximize,
            positive_params: true,
        };
        let start = Instant::now();
        let syn = synthesize_result(network.model(), &results[0], sopts).expect("synthesize");
        synthesis_ns = Some(start.elapsed().as_nanos() as u64);
        digest = fnv1a(digest, &format!("{} {:?}", syn.constraint, syn.assignment));
    }

    EnginePass {
        enumerate_ns,
        query_ns,
        synthesis_ns,
        feasibility_hits,
        feasibility_misses,
        digest,
    }
}

fn run_trial(w: &Workload) -> Trial {
    let mut t = Trial::default();

    let start = Instant::now();
    let program = parse(&w.source).expect("parse");
    t.parse_ns = start.elapsed().as_nanos() as u64;
    drop(program);

    let start = Instant::now();
    let mut network = Network::from_source(&w.source).expect("compile");
    for (name, value) in &w.bindings {
        network.bind(name, value.clone()).expect("bind");
    }
    t.compile_ns = start.elapsed().as_nanos() as u64;

    let enumeration = engine_pass(&network, w, EngineKind::Enum);
    let diagrams = engine_pass(&network, w, EngineKind::Bdd);
    // The whole point of timing both: the answers must be bit-identical,
    // otherwise the speedup is comparing different computations.
    assert_eq!(
        enumeration.digest, diagrams.digest,
        "{}: enum and bdd posteriors diverge",
        w.name
    );

    t.enumerate_ns = enumeration.enumerate_ns;
    t.query_ns = enumeration.query_ns;
    t.bdd_enumerate_ns = diagrams.enumerate_ns;
    t.bdd_query_ns = diagrams.query_ns;
    t.synthesis_ns = enumeration.synthesis_ns;
    t.feasibility_hits = enumeration.feasibility_hits;
    t.feasibility_misses = enumeration.feasibility_misses;
    t.answer_digest = enumeration.digest;

    t
}

fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

fn bench_workload(w: &Workload, trials: usize) -> Json {
    let runs: Vec<Trial> = (0..trials).map(|_| run_trial(w)).collect();
    let digest = runs[0].answer_digest;
    assert!(
        runs.iter().all(|t| t.answer_digest == digest),
        "{}: non-deterministic answers across trials",
        w.name
    );
    let mut phases = vec![
        (
            "parse_ns",
            num(median(runs.iter().map(|t| t.parse_ns).collect())),
        ),
        (
            "compile_ns",
            num(median(runs.iter().map(|t| t.compile_ns).collect())),
        ),
        (
            "enumerate_ns",
            num(median(runs.iter().map(|t| t.enumerate_ns).collect())),
        ),
        (
            "query_ns",
            num(median(runs.iter().map(|t| t.query_ns).collect())),
        ),
        (
            "bdd_enumerate_ns",
            num(median(runs.iter().map(|t| t.bdd_enumerate_ns).collect())),
        ),
        (
            "bdd_query_ns",
            num(median(runs.iter().map(|t| t.bdd_query_ns).collect())),
        ),
    ];
    if runs[0].synthesis_ns.is_some() {
        phases.push((
            "synthesis_ns",
            num(median(
                runs.iter().map(|t| t.synthesis_ns.unwrap_or(0)).collect(),
            )),
        ));
    }
    // Headline ratio: enumeration median over diagram median. `run_trial`
    // already asserted the digests match, so this compares like for like.
    let enum_med = median(runs.iter().map(|t| t.enumerate_ns).collect()) as f64;
    let bdd_med = median(runs.iter().map(|t| t.bdd_enumerate_ns).collect()).max(1) as f64;
    Json::obj(vec![
        ("name", Json::Str(w.name.to_string())),
        ("phases", Json::obj(phases)),
        (
            "feasibility",
            Json::obj(vec![
                ("hits", num(runs[0].feasibility_hits)),
                ("misses", num(runs[0].feasibility_misses)),
            ]),
        ),
        ("answer_digest", Json::Str(format!("{digest:016x}"))),
        (
            "bdd_speedup",
            Json::Num((enum_med / bdd_med * 1000.0).round() / 1000.0),
        ),
    ])
}

/// The parameter-sweep workload: a 16-point grid over the threshold
/// parameter of `gossip_k4_sweep.bay`, timed two ways — (a) sixteen
/// independent pointwise enumerations (bind, analyze, answer; exactly what
/// sixteen `/v1/run` calls would do) and (b) one `sweep()` call that shares
/// the exploration across the grid. The FNV-1a digests over the rendered
/// answers are asserted identical every trial, so `sweep_speedup` compares
/// bit-identical computations; the per-trial digest pins determinism the
/// same way `bench_workload` does.
fn bench_sweep(trials: usize) -> Json {
    let w = curated("gossip_k4_sweep16", "gossip_k4_sweep.bay");
    let model = Network::from_source(&w.source)
        .expect("compile")
        .model()
        .clone();
    let param = model
        .params
        .iter()
        .find(|id| model.params.name(*id) == "K")
        .expect("gossip_k4_sweep.bay declares K");
    let points: Vec<Vec<Rat>> = (1..=16).map(|k| vec![Rat::int(k)]).collect();
    let opts = ExactOptions {
        engine: EngineKind::Enum,
        ..ExactOptions::default()
    };

    let mut pointwise_runs = Vec::new();
    let mut sweep_runs = Vec::new();
    let mut digest = 0u64;
    for trial in 0..trials {
        // (a) Pointwise: one full enumeration per grid point.
        let start = Instant::now();
        let mut pointwise_digest = 0u64;
        for point in &points {
            let mut bound = model.clone();
            bound.bind_param("K", point[0].clone()).expect("bind K");
            let scheduler = scheduler_for(&bound);
            let analysis = analyze(&bound, &*scheduler, &opts).expect("analyze");
            for q in &bound.queries {
                let r = answer(&bound, &analysis, q, opts.fm_pruning).expect("answer");
                pointwise_digest = fnv1a(pointwise_digest, &r.to_string());
            }
            pointwise_digest = fnv1a(
                pointwise_digest,
                &format!(
                    "Z={} D={}",
                    analysis.total_terminal_mass(),
                    analysis.total_discarded_mass()
                ),
            );
        }
        pointwise_runs.push(start.elapsed().as_nanos() as u64);

        // (b) Sweep: shared exploration, per-point answers.
        let start = Instant::now();
        let result = sweep(&model, &[param], &points, &opts).expect("sweep");
        let mut sweep_digest = 0u64;
        for p in &result.points {
            let p = p.as_ref().expect("sweep point");
            for r in &p.results {
                sweep_digest = fnv1a(sweep_digest, &r.to_string());
            }
            sweep_digest = fnv1a(sweep_digest, &format!("Z={} D={}", p.z, p.discarded));
        }
        sweep_runs.push(start.elapsed().as_nanos() as u64);

        assert_eq!(
            pointwise_digest, sweep_digest,
            "gossip_k4_sweep16: sweep and pointwise answers diverge"
        );
        if trial == 0 {
            digest = sweep_digest;
        } else {
            assert_eq!(
                digest, sweep_digest,
                "gossip_k4_sweep16: non-deterministic answers across trials"
            );
        }
    }

    let pointwise_med = median(pointwise_runs.clone());
    let sweep_med = median(sweep_runs.clone());
    Json::obj(vec![
        ("name", Json::Str("gossip_k4_sweep16".to_string())),
        (
            "phases",
            Json::obj(vec![
                ("pointwise_ns", num(pointwise_med)),
                ("sweep_ns", num(sweep_med)),
            ]),
        ),
        ("grid_points", num(points.len() as u64)),
        ("answer_digest", Json::Str(format!("{digest:016x}"))),
        (
            "sweep_speedup",
            Json::Num((pointwise_med as f64 / sweep_med.max(1) as f64 * 1000.0).round() / 1000.0),
        ),
    ])
}

/// The optimization-pass workload: `gossip_k4.bay` enumerated twice from
/// the same compiled model — once with the pass pipeline disabled and once
/// with it on (symmetry canonicalization merges the three interchangeable
/// peers' frontier states; the group has order 6). The rendered answers
/// plus Z/discarded digests are asserted identical every trial, so
/// `opt_speedup` compares bit-identical posteriors.
fn bench_opt(trials: usize) -> Json {
    let w = curated("gossip_k4_noopt_vs_opt", "gossip_k4.bay");
    let network = Network::from_source(&w.source).expect("compile");
    let timed_pass = |passes: bool| -> (u64, u64) {
        let opts = ExactOptions {
            engine: EngineKind::Enum,
            passes,
            ..ExactOptions::default()
        };
        let start = Instant::now();
        let analysis = analyze(network.model(), network.scheduler(), &opts).expect("analyze");
        let ns = start.elapsed().as_nanos() as u64;
        let mut d = 0u64;
        for q in network.queries() {
            let r = answer(network.model(), &analysis, q, opts.fm_pruning).expect("answer");
            d = fnv1a(d, &r.to_string());
        }
        d = fnv1a(
            d,
            &format!(
                "Z={} D={}",
                analysis.total_terminal_mass(),
                analysis.total_discarded_mass()
            ),
        );
        (ns, d)
    };

    let mut noopt_runs = Vec::new();
    let mut opt_runs = Vec::new();
    let mut digest = 0u64;
    for trial in 0..trials {
        let (noopt_ns, noopt_digest) = timed_pass(false);
        let (opt_ns, opt_digest) = timed_pass(true);
        assert_eq!(
            noopt_digest, opt_digest,
            "gossip_k4_noopt_vs_opt: optimized posterior diverges"
        );
        noopt_runs.push(noopt_ns);
        opt_runs.push(opt_ns);
        if trial == 0 {
            digest = opt_digest;
        } else {
            assert_eq!(
                digest, opt_digest,
                "gossip_k4_noopt_vs_opt: non-deterministic answers across trials"
            );
        }
    }

    let noopt_med = median(noopt_runs);
    let opt_med = median(opt_runs);
    Json::obj(vec![
        ("name", Json::Str("gossip_k4_noopt_vs_opt".to_string())),
        (
            "phases",
            Json::obj(vec![
                ("noopt_enumerate_ns", num(noopt_med)),
                ("opt_enumerate_ns", num(opt_med)),
            ]),
        ),
        ("answer_digest", Json::Str(format!("{digest:016x}"))),
        (
            "opt_speedup",
            Json::Num((noopt_med as f64 / opt_med.max(1) as f64 * 1000.0).round() / 1000.0),
        ),
    ])
}

fn machine_info() -> Json {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    Json::obj(vec![
        ("os", Json::Str(std::env::consts::OS.to_string())),
        ("arch", Json::Str(std::env::consts::ARCH.to_string())),
        ("cpus", num(cpus)),
        (
            "profile",
            Json::Str(
                if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                }
                .to_string(),
            ),
        ),
    ])
}

/// Per-workload enumerate-phase speedup vs. an embedded baseline report.
fn comparison(current: &Json, baseline: &Json) -> Json {
    let find = |report: &Json, name: &str| -> Option<f64> {
        report.get("workloads")?.as_arr()?.iter().find_map(|w| {
            if w.get("name")?.as_str()? == name {
                w.get("phases")?.get("enumerate_ns")?.as_f64()
            } else {
                None
            }
        })
    };
    let mut rows = Vec::new();
    if let Some(ws) = current.get("workloads").and_then(Json::as_arr) {
        for w in ws {
            let name = w.get("name").and_then(Json::as_str).unwrap_or("");
            let (Some(now), Some(before)) = (find(current, name), find(baseline, name)) else {
                continue;
            };
            if now <= 0.0 {
                continue;
            }
            rows.push(Json::obj(vec![
                ("name", Json::Str(name.to_string())),
                ("baseline_enumerate_ns", Json::Num(before)),
                ("enumerate_ns", Json::Num(now)),
                (
                    "speedup",
                    Json::Num((before / now * 1000.0).round() / 1000.0),
                ),
            ]));
        }
    }
    Json::Arr(rows)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut trials = 5usize;
    let mut out: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--trials" => {
                i += 1;
                trials = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--trials needs a positive integer");
            }
            "--out" => {
                i += 1;
                out = Some(args.get(i).expect("--out needs a path").clone());
            }
            "--baseline" => {
                i += 1;
                baseline_path = Some(args.get(i).expect("--baseline needs a path").clone());
            }
            "--check" => {
                i += 1;
                check_path = Some(args.get(i).expect("--check needs a path").clone());
            }
            other => panic!("unknown flag `{other}` (see --help in the source header)"),
        }
        i += 1;
    }
    if quick {
        trials = trials.min(2);
    }
    assert!(trials >= 1, "--trials must be at least 1");

    let ws = workloads(quick);
    let mut rows = Vec::new();
    for w in &ws {
        eprintln!("regress: {} ({} trials)...", w.name, trials);
        rows.push(bench_workload(w, trials));
    }
    eprintln!("regress: gossip_k4_sweep16 ({trials} trials)...");
    rows.push(bench_sweep(trials));
    eprintln!("regress: gossip_k4_noopt_vs_opt ({trials} trials)...");
    rows.push(bench_opt(trials));

    let mut report_pairs = vec![
        ("schema", Json::Str("bayonet-regress-v1".to_string())),
        ("quick", Json::Bool(quick)),
        ("trials", num(trials as u64)),
        ("machine", machine_info()),
        ("workloads", Json::Arr(rows)),
    ];
    if let Some(path) = &baseline_path {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = parse_json(&text).expect("baseline is not valid JSON");
        let current = Json::obj(report_pairs.clone());
        report_pairs.push(("comparison", comparison(&current, &baseline)));
        report_pairs.push(("baseline", baseline));
    }
    let report = Json::obj(report_pairs);

    let rendered = report.to_string();
    // Self-validation: the emitted report must round-trip through the same
    // parser the service uses; a malformed report is a harness bug.
    let reparsed = parse_json(&rendered).expect("emitted report is not valid JSON");
    assert_eq!(reparsed, report, "report does not round-trip");

    println!("{rendered}");
    if let Some(path) = &out {
        std::fs::write(path, format!("{rendered}\n"))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("regress: wrote {path}");
    }

    if let Some(path) = &check_path {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read check baseline {path}: {e}"));
        let baseline = parse_json(&text).expect("check baseline is not valid JSON");
        if !check_against(&report, &baseline) {
            std::process::exit(1);
        }
    }
}

/// The CI gate: both exact backends' enumerate-phase medians, per
/// workload, against a committed baseline report. Workloads present on
/// only one side (e.g. a `--quick` run against a full baseline) are
/// skipped; phases below the noise floor are printed but not gated.
fn check_against(current: &Json, baseline: &Json) -> bool {
    if let Some(pass) = gate::host_class_gate(current, baseline) {
        return pass;
    }
    let phase = |report: &Json, name: &str, key: &str| -> Option<f64> {
        report.get("workloads")?.as_arr()?.iter().find_map(|w| {
            if w.get("name")?.as_str()? == name {
                w.get("phases")?.get(key)?.as_f64()
            } else {
                None
            }
        })
    };
    let mut rows = Vec::new();
    if let Some(ws) = current.get("workloads").and_then(Json::as_arr) {
        for w in ws {
            let name = w.get("name").and_then(Json::as_str).unwrap_or("");
            for key in [
                "enumerate_ns",
                "bdd_enumerate_ns",
                "sweep_ns",
                "pointwise_ns",
                "noopt_enumerate_ns",
                "opt_enumerate_ns",
            ] {
                let (Some(now), Some(before)) =
                    (phase(current, name, key), phase(baseline, name, key))
                else {
                    continue;
                };
                rows.push(gate::Check {
                    label: format!("{name}/{key}"),
                    baseline: before,
                    current: now,
                    gated: before >= gate::MIN_GATED_NS,
                });
            }
        }
    }
    assert!(
        !rows.is_empty(),
        "check: no comparable workloads between current run and baseline"
    );
    gate::verdict(&rows, gate::tolerance(), "ns")
}
