//! Runtime values of the Bayonet semantics.
//!
//! The value domain is the rationals (paper Figure 4); when symbolic
//! configuration parameters are in play, values are linear expressions over
//! those parameters. [`Val`] keeps the invariant that a constant expression
//! is always represented as [`Val::Rat`], so structurally equal values
//! compare and hash equal — which is what lets the exact engine merge
//! configurations.

use std::fmt;

use bayonet_num::Rat;
use bayonet_symbolic::{LinExpr, ParamTable};

use crate::error::SemanticsError;

/// A runtime value: an exact rational, or a non-constant linear expression
/// over symbolic parameters.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Val {
    /// A concrete rational.
    Rat(Rat),
    /// A linear expression with at least one parameter (invariant:
    /// never constant).
    Sym(LinExpr),
}

impl Val {
    /// The value 0.
    pub fn zero() -> Val {
        Val::Rat(Rat::zero())
    }

    /// The value 1.
    pub fn one() -> Val {
        Val::Rat(Rat::one())
    }

    /// An integer value.
    pub fn int(v: i64) -> Val {
        Val::Rat(Rat::int(v))
    }

    /// 0/1 encoding of a boolean.
    pub fn from_bool(b: bool) -> Val {
        Val::Rat(Rat::from_bool(b))
    }

    /// Builds a value from a linear expression, collapsing constants.
    pub fn from_lin(e: LinExpr) -> Val {
        match e.as_constant() {
            Some(c) => Val::Rat(c.clone()),
            None => Val::Sym(e),
        }
    }

    /// Returns the concrete rational, if this value is concrete.
    pub fn as_rat(&self) -> Option<&Rat> {
        match self {
            Val::Rat(r) => Some(r),
            Val::Sym(_) => None,
        }
    }

    /// Returns `true` if the value is concrete.
    pub fn is_concrete(&self) -> bool {
        matches!(self, Val::Rat(_))
    }

    /// Views the value as a linear expression (constants become constant
    /// expressions).
    pub fn to_lin(&self) -> LinExpr {
        match self {
            Val::Rat(r) => LinExpr::constant(r.clone()),
            Val::Sym(e) => e.clone(),
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Val) -> Val {
        match (self, other) {
            (Val::Rat(a), Val::Rat(b)) => Val::Rat(a + b),
            _ => Val::from_lin(self.to_lin().add(&other.to_lin())),
        }
    }

    /// `self - other`.
    pub fn sub(&self, other: &Val) -> Val {
        match (self, other) {
            (Val::Rat(a), Val::Rat(b)) => Val::Rat(a - b),
            _ => Val::from_lin(self.to_lin().sub(&other.to_lin())),
        }
    }

    /// Negation.
    pub fn neg(&self) -> Val {
        match self {
            Val::Rat(a) => Val::Rat(-a),
            Val::Sym(e) => Val::from_lin(e.neg()),
        }
    }

    /// `self * other`.
    ///
    /// # Errors
    ///
    /// Fails with [`SemanticsError::NonlinearArithmetic`] when both operands
    /// are symbolic (the grammar's `v · e` restriction, Figure 4).
    pub fn mul(&self, other: &Val) -> Result<Val, SemanticsError> {
        match (self, other) {
            (Val::Rat(a), Val::Rat(b)) => Ok(Val::Rat(a * b)),
            _ => self
                .to_lin()
                .checked_mul(&other.to_lin())
                .map(Val::from_lin)
                .ok_or(SemanticsError::NonlinearArithmetic),
        }
    }

    /// `self / other`.
    ///
    /// # Errors
    ///
    /// Fails on division by zero or by a symbolic value.
    pub fn div(&self, other: &Val) -> Result<Val, SemanticsError> {
        match other {
            Val::Rat(b) if b.is_zero() => Err(SemanticsError::DivisionByZero),
            Val::Rat(b) => match self {
                Val::Rat(a) => Ok(Val::Rat(a / b)),
                Val::Sym(e) => Ok(Val::from_lin(e.scale(&b.recip()))),
            },
            Val::Sym(_) => Err(SemanticsError::NonlinearArithmetic),
        }
    }

    /// Renders with parameter names from `table`.
    pub fn display<'a>(&'a self, table: &'a ParamTable) -> DisplayVal<'a> {
        DisplayVal { val: self, table }
    }
}

impl Default for Val {
    fn default() -> Self {
        Val::zero()
    }
}

impl From<Rat> for Val {
    fn from(r: Rat) -> Self {
        Val::Rat(r)
    }
}

impl From<i64> for Val {
    fn from(v: i64) -> Self {
        Val::int(v)
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Rat(r) => write!(f, "{r}"),
            Val::Sym(_) => write!(f, "<symbolic>"),
        }
    }
}

/// Helper rendering a [`Val`] with its parameter names.
pub struct DisplayVal<'a> {
    val: &'a Val,
    table: &'a ParamTable,
}

impl fmt::Display for DisplayVal<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.val {
            Val::Rat(r) => write!(f, "{r}"),
            Val::Sym(e) => write!(f, "{}", e.display(self.table)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayonet_symbolic::ParamTable;

    fn sym() -> (ParamTable, Val) {
        let mut t = ParamTable::new();
        let p = t.intern("P");
        (t, Val::Sym(LinExpr::param(p)))
    }

    #[test]
    fn concrete_arithmetic() {
        let a = Val::Rat(Rat::ratio(1, 2));
        let b = Val::Rat(Rat::ratio(1, 3));
        assert_eq!(a.add(&b), Val::Rat(Rat::ratio(5, 6)));
        assert_eq!(a.sub(&b), Val::Rat(Rat::ratio(1, 6)));
        assert_eq!(a.mul(&b).unwrap(), Val::Rat(Rat::ratio(1, 6)));
        assert_eq!(a.div(&b).unwrap(), Val::Rat(Rat::ratio(3, 2)));
        assert_eq!(a.neg(), Val::Rat(Rat::ratio(-1, 2)));
    }

    #[test]
    fn symbolic_collapse_to_concrete() {
        let (_, p) = sym();
        // P - P collapses back to the concrete 0, so configs merge.
        assert_eq!(p.sub(&p), Val::zero());
        assert!(p.sub(&p).is_concrete());
        // P + 1 stays symbolic.
        assert!(!p.add(&Val::one()).is_concrete());
    }

    #[test]
    fn nonlinear_product_rejected() {
        let (_, p) = sym();
        assert!(matches!(
            p.mul(&p),
            Err(SemanticsError::NonlinearArithmetic)
        ));
        // Scalar * symbolic is fine in either order.
        assert!(p.mul(&Val::int(3)).is_ok());
        assert!(Val::int(3).mul(&p).is_ok());
    }

    #[test]
    fn division_rules() {
        let (_, p) = sym();
        assert!(matches!(
            Val::one().div(&Val::zero()),
            Err(SemanticsError::DivisionByZero)
        ));
        assert!(matches!(
            Val::one().div(&p),
            Err(SemanticsError::NonlinearArithmetic)
        ));
        assert_eq!(
            p.div(&Val::int(2))
                .unwrap()
                .to_lin()
                .coeff(p.to_lin().params().next().unwrap()),
            Rat::ratio(1, 2)
        );
    }
}
