//! The exact inference engine: exhaustive weighted exploration of the
//! global transition system with configuration merging.
//!
//! This plays the role PSI plays in the paper's toolchain — an exact
//! posterior calculator. The global semantics is a Markov chain over
//! configurations (Figure 7), so identical configurations reached along
//! different traces can have their masses summed; that merging is what makes
//! 30-node networks tractable. Observation failures remove mass, which is
//! restored by normalizing with the surviving mass `Z` (paper §3.2).
//!
//! # Parallel expansion and determinism
//!
//! Large frontiers are expanded by a work-stealing crew: the frontier is cut
//! into chunk tasks, each worker owns a deque seeded with one task, and the
//! remaining tasks queue on a shared injector that idle workers steal from
//! (falling back to raiding each other's deques). Expanding one
//! configuration is independent of every other, so any schedule computes the
//! same multiset of successors; to make the *results byte-for-bit
//! reproducible regardless of schedule*, chunk outputs are re-assembled in
//! chunk order and every merge ([`compress`]) sorts its output by the
//! canonical `(GlobalConfig, Guard)` state key. A single-threaded run and an
//! 8-thread run therefore produce identical [`Analysis`] values (identical
//! terminals, identical statistics — only [`EngineStats::steals`] is
//! schedule-dependent), which `crates/exact/tests/differential.rs` locks
//! down.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bayonet_num::Rat;
use bayonet_symbolic::{FeasibilityCache, Guard};

use bayonet_net::{
    deliver, initial_config, run_handler, Action, Deadline, GlobalConfig, HandlerOutcome, Model,
    Scheduler, SemanticsError, Val,
};

use crossbeam::deque::{Injector, Stealer, Worker};

use crate::enumerate::enumerate_eval_cached;
use crate::pool::ComputePool;

/// Which exact backend explores the global transition system. Both produce
/// bit-identical [`Analysis`] posteriors; they differ in how the frontier is
/// represented and therefore in speed on structured state spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Explicit frontier enumeration with configuration merging (the
    /// default). Parallelizes across [`ExactOptions::threads`].
    #[default]
    Enum,
    /// Knowledge compilation to algebraic decision diagrams
    /// (`bayonet-bdd`): the frontier is a set of hash-consed diagrams and
    /// each scheduler action is a set-level transform. Wins — often by an
    /// order of magnitude — when nodes' local states are conditionally
    /// independent. Single-threaded; ignores [`ExactOptions::threads`].
    Bdd,
    /// Let the static cost model pick between [`EngineKind::Enum`] and
    /// [`EngineKind::Bdd`] (see [`crate::planner`]). The choice is a pure
    /// function of the model, so results stay deterministic.
    Auto,
}

/// Options controlling the exact engine.
#[derive(Debug, Clone)]
pub struct ExactOptions {
    /// Maximum number of global steps before reporting non-termination
    /// (the paper's generated programs assert `terminated()` after
    /// `num_steps`; we iterate to the fixpoint with this safety bound).
    pub max_global_steps: u64,
    /// Safety bound on simultaneously tracked configurations.
    pub max_configs: usize,
    /// Prune symbolically infeasible branches with Fourier–Motzkin.
    pub fm_pruning: bool,
    /// Merge identical configurations (the ablation switch; disabling this
    /// recovers naive trace enumeration).
    pub merge_configs: bool,
    /// Worker threads for frontier expansion (1 = single-threaded). When
    /// [`ExactOptions::pool`] is set this is a *request*: the engine leases
    /// up to `threads - 1` extra workers from the pool and degrades toward
    /// single-threaded when the pool is busy. Results are identical for
    /// every value; only wall-clock time changes.
    pub threads: usize,
    /// Smallest frontier worth parallelizing; frontiers below this expand
    /// sequentially even when `threads > 1` (spawn overhead dominates).
    pub par_threshold: usize,
    /// Shared compute pool to lease extra workers from (see
    /// [`ComputePool`]); `None` means `threads` is taken at face value.
    pub pool: Option<ComputePool>,
    /// Cooperative deadline/cancellation, polled between expansion batches.
    /// Defaults to unlimited.
    pub deadline: Deadline,
    /// Memo table for Fourier–Motzkin feasibility verdicts. `None` (the
    /// default) gives each [`analyze`] run a private cache; pass a shared
    /// [`FeasibilityCache`] to reuse verdicts across the analyze and
    /// query-answering passes of one request.
    pub feasibility_cache: Option<Arc<FeasibilityCache>>,
    /// Which backend to run; see [`EngineKind`]. Both backends honor every
    /// other option and produce bit-identical posteriors.
    pub engine: EngineKind,
    /// Run the model-optimization pass pipeline (`bayonet_net::opt`) before
    /// inference (default on; the CLI's `--no-opt` and the serve API's
    /// `"passes": false` turn it off). Posteriors are bit-identical either
    /// way; passes only shrink the explored state space. Models that
    /// already carry pass results ([`Model::opt_info`]) are not re-optimized.
    pub passes: bool,
}

impl Default for ExactOptions {
    fn default() -> Self {
        ExactOptions {
            max_global_steps: 100_000,
            max_configs: 4_000_000,
            fm_pruning: true,
            merge_configs: true,
            threads: 1,
            par_threshold: 16,
            pool: None,
            deadline: Deadline::default(),
            feasibility_cache: None,
            engine: EngineKind::default(),
            passes: true,
        }
    }
}

/// Statistics from an exact-engine run.
///
/// Every field except [`EngineStats::steals`] and the feasibility-cache
/// counters is a pure function of the model and options — independent of
/// thread count and schedule. The cache counters depend on which worker
/// reaches a guard first, so they are reported out-of-band (CLI `--stats`
/// stderr, server `/metrics` aggregates) and never in pinned output.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Global steps executed (depth of the exploration).
    pub steps: u64,
    /// Configuration expansions performed.
    pub expansions: u64,
    /// Peak number of simultaneously tracked configurations.
    pub peak_configs: usize,
    /// Number of times a successor merged into an existing configuration.
    pub merge_hits: u64,
    /// Number of distinct terminal configurations.
    pub terminal_configs: usize,
    /// Expansion tasks stolen across worker deques (schedule-dependent;
    /// 0 for single-threaded runs).
    pub steals: u64,
    /// Fourier–Motzkin feasibility checks answered from the per-run guard
    /// cache (schedule-dependent under parallel expansion).
    pub feasibility_hits: u64,
    /// Feasibility checks that ran the full elimination.
    pub feasibility_misses: u64,
    /// Decision nodes allocated in the ADD store ([`EngineKind::Bdd`] only;
    /// 0 under enumeration).
    pub bdd_nodes: u64,
    /// ADD constructions answered by the unique table (structural merges;
    /// [`EngineKind::Bdd`] only).
    pub bdd_unique_hits: u64,
    /// ADD operations answered by the apply/operation memo caches
    /// ([`EngineKind::Bdd`] only).
    pub bdd_apply_cache_hits: u64,
    /// Successor configurations replaced by a smaller member of their
    /// symmetry orbit (see `bayonet_net::opt`; 0 when the model has no
    /// non-trivial automorphisms or canonicalization is gated off).
    /// Schedule-independent: a pure function of the model and options.
    pub orbit_merges: u64,
}

/// Errors from the exact engine.
#[derive(Debug)]
pub enum ExactError {
    /// A semantic error in the model (hard failure).
    Semantics(SemanticsError),
    /// Mass remained on non-terminal configurations after the step bound.
    Unterminated {
        /// Number of live configurations.
        live_configs: usize,
        /// Total unresolved probability mass (approximate display).
        mass: String,
    },
    /// The configuration frontier exceeded [`ExactOptions::max_configs`].
    ConfigLimit(usize),
    /// All probability mass was discarded by observations (Z = 0), so the
    /// posterior is undefined.
    AllMassObservedOut,
    /// The run was cut short by its [`Deadline`] (timeout or cancellation).
    Interrupted {
        /// Global steps completed before the interruption.
        steps: u64,
        /// Configuration expansions completed before the interruption.
        expansions: u64,
    },
}

impl fmt::Display for ExactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactError::Semantics(e) => write!(f, "semantic error: {e}"),
            ExactError::Unterminated { live_configs, mass } => write!(
                f,
                "network did not terminate within the step bound \
                 ({live_configs} live configurations, mass ≈ {mass})"
            ),
            ExactError::ConfigLimit(n) => {
                write!(
                    f,
                    "exact state space exceeded the configuration limit ({n})"
                )
            }
            ExactError::AllMassObservedOut => {
                f.write_str("all probability mass was discarded by observations (Z = 0)")
            }
            ExactError::Interrupted { steps, expansions } => write!(
                f,
                "exact inference interrupted by deadline \
                 (after {steps} steps, {expansions} expansions)"
            ),
        }
    }
}

impl std::error::Error for ExactError {}

impl From<SemanticsError> for ExactError {
    fn from(e: SemanticsError) -> Self {
        ExactError::Semantics(e)
    }
}

/// The exact posterior over terminal configurations.
///
/// `terminals` and `discarded` are sorted by canonical state key / guard,
/// so two runs of the same model produce structurally identical values
/// regardless of thread count.
#[derive(Debug)]
pub struct Analysis {
    /// Terminal configurations with their guards and unnormalized masses.
    pub terminals: Vec<(GlobalConfig, Guard, Rat)>,
    /// Mass discarded by failed observations, per guard.
    pub discarded: Vec<(Guard, Rat)>,
    /// Run statistics.
    pub stats: EngineStats,
}

impl Analysis {
    /// Total surviving (terminal) mass; with no symbolic parameters this is
    /// the paper's normalization constant `Z`.
    pub fn total_terminal_mass(&self) -> Rat {
        self.terminals
            .iter()
            .fold(Rat::zero(), |acc, (_, _, m)| acc + m)
    }

    /// Total mass discarded by observations.
    pub fn total_discarded_mass(&self) -> Rat {
        self.discarded
            .iter()
            .fold(Rat::zero(), |acc, (_, m)| acc + m)
    }
}

/// How many configuration expansions to run between deadline polls.
const DEADLINE_POLL_STRIDE: usize = 256;

/// Target number of chunk tasks per parallel worker. More tasks than
/// workers is what makes stealing effective under uneven chunk costs.
const TASKS_PER_WORKER: usize = 4;

/// A weighted set of guarded configurations. Kept as a `Vec`; merging
/// compresses it through a hash map.
type Weighted = Vec<(Guard, GlobalConfig, Rat)>;

/// Successors produced by expanding a batch of configurations.
#[derive(Default)]
struct Expansion {
    next: Weighted,
    terminal: Weighted,
    discarded: Vec<(Guard, Rat)>,
    orbit_merges: u64,
}

impl Expansion {
    fn absorb(&mut self, part: Expansion) {
        self.next.extend(part.next);
        self.terminal.extend(part.terminal);
        self.discarded.extend(part.discarded);
        self.orbit_merges += part.orbit_merges;
    }
}

/// The symmetry group to canonicalize frontier configurations with, when
/// every gate passes: the model was optimized and has a non-trivial
/// automorphism group, the scheduler *actually running* is
/// permutation-invariant (a `set_scheduler` override can differ from the
/// model's declared kind), and no unbound symbolic parameters remain (the
/// case-split order of symbolic query evaluation would otherwise depend on
/// which orbit representative survives).
pub(crate) fn symmetry_for<'a>(
    model: &'a Model,
    scheduler: &dyn Scheduler,
) -> Option<&'a bayonet_net::opt::SymmetryGroup> {
    if !scheduler.permutation_invariant() || model.has_symbolic_params() {
        return None;
    }
    model.opt_info().and_then(|i| i.symmetry.as_ref())
}

/// Canonicalizes a successor configuration by symmetry orbit, counting the
/// replacement when it changed anything.
fn canon_config(
    sym: Option<&bayonet_net::opt::SymmetryGroup>,
    cfg: &mut GlobalConfig,
    merges: &mut u64,
) {
    if let Some(group) = sym {
        if group.canonicalize(cfg) {
            *merges += 1;
        }
    }
}

/// Expands one non-terminal configuration by one global step, appending
/// successors to `out`.
#[allow(clippy::too_many_arguments)]
fn expand_config(
    model: &Model,
    scheduler: &dyn Scheduler,
    sym: Option<&bayonet_net::opt::SymmetryGroup>,
    guard: &Guard,
    cfg: &GlobalConfig,
    mass: &Rat,
    opts: &ExactOptions,
    out: &mut Expansion,
) -> Result<(), ExactError> {
    let k = model.num_nodes();
    let enabled = cfg.enabled_actions();
    debug_assert!(!enabled.is_empty(), "frontier configs are non-terminal");
    for (action, p_sched, sched_next) in scheduler.distribution(cfg.sched_state, &enabled, k) {
        let step_mass = mass * &p_sched;
        match action {
            Action::Fwd(i) => {
                let mut c2 = cfg.clone();
                c2.sched_state = sched_next;
                deliver(model, &mut c2, i)?;
                canon_config(sym, &mut c2, &mut out.orbit_merges);
                if c2.is_terminal() {
                    out.terminal.push((guard.clone(), c2, step_mass));
                } else {
                    out.next.push((guard.clone(), c2, step_mass));
                }
            }
            Action::Run(i) => {
                // G-Run: enumerate every complete handler execution.
                let branches = enumerate_eval_cached(
                    guard,
                    opts.fm_pruning,
                    opts.feasibility_cache.as_deref(),
                    |driver| {
                        let mut node_cfg = cfg.nodes[i].clone();
                        let outcome = run_handler(model, i, &mut node_cfg, driver)?;
                        Ok((node_cfg, outcome))
                    },
                )?;
                for b in branches {
                    let (node_cfg, outcome) = b.result;
                    let branch_mass = &step_mass * &b.weight;
                    match outcome {
                        HandlerOutcome::ObserveFailed => {
                            // Conditioning: remove this mass from the
                            // distribution.
                            out.discarded.push((b.guard, branch_mass));
                        }
                        HandlerOutcome::Completed | HandlerOutcome::AssertFailed => {
                            let mut c2 = cfg.clone();
                            c2.sched_state = sched_next;
                            c2.nodes[i] = node_cfg;
                            if outcome == HandlerOutcome::AssertFailed {
                                c2.nodes[i].error = true;
                            }
                            canon_config(sym, &mut c2, &mut out.orbit_merges);
                            if c2.is_terminal() {
                                out.terminal.push((b.guard, c2, branch_mass));
                            } else {
                                out.next.push((b.guard, c2, branch_mass));
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Merges identical `(guard, config)` entries by summing their masses, then
/// sorts by the canonical state key so the output order — and everything
/// derived from it downstream — is independent of both hash-map iteration
/// order and the parallel schedule that produced `items`.
fn compress(items: Weighted, stats: &mut EngineStats) -> Weighted {
    let mut map: HashMap<(Guard, GlobalConfig), Rat> = HashMap::with_capacity(items.len());
    for (g, c, m) in items {
        match map.entry((g, c)) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                *e.get_mut() += &m;
                stats.merge_hits += 1;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(m);
            }
        }
    }
    let mut out: Weighted = map.into_iter().map(|((g, c), m)| (g, c, m)).collect();
    out.sort_unstable_by(|(g1, c1, _), (g2, c2, _)| (c1, g1).cmp(&(c2, g2)));
    out
}

/// One parallel expansion task: chunk `ordinal` covering
/// `frontier[start..end]`.
#[derive(Clone, Copy)]
struct Task {
    ordinal: usize,
    start: usize,
    end: usize,
}

/// A worker's error, tagged with the chunk it occurred in so the caller can
/// surface the error the *sequential* engine would have hit first.
/// Interruptions are tagged `usize::MAX` so real errors take precedence.
type TaggedError = (usize, ExactError);

/// Expands `frontier` with a work-stealing crew of `workers` threads.
///
/// Tasks are chunk ranges of the frontier. Each worker's deque is seeded
/// with one task; the remainder queue on a shared injector. A worker whose
/// deque runs dry first steals from the injector, then raids its peers —
/// each successful steal is counted. Chunk outputs are re-assembled in
/// ordinal order, so the merged [`Expansion`] is byte-identical to what the
/// sequential loop produces.
fn expand_frontier_parallel(
    model: &Model,
    scheduler: &dyn Scheduler,
    sym: Option<&bayonet_net::opt::SymmetryGroup>,
    frontier: &[(Guard, GlobalConfig, Rat)],
    opts: &ExactOptions,
    workers: usize,
) -> Result<(Expansion, u64), TaggedError> {
    let chunk = frontier.len().div_ceil(workers * TASKS_PER_WORKER).max(1);
    let locals: Vec<Worker<Task>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<Task>> = locals.iter().map(Worker::stealer).collect();
    let injector = Injector::new();
    for (ordinal, start) in (0..frontier.len()).step_by(chunk).enumerate() {
        let task = Task {
            ordinal,
            start,
            end: (start + chunk).min(frontier.len()),
        };
        if ordinal < workers {
            locals[ordinal].push(task);
        } else {
            injector.push(task);
        }
    }
    // Raised by the first worker to fail (deadline or semantics), making
    // the others abandon their remaining tasks promptly.
    let stop = AtomicBool::new(false);

    type WorkerResult = Result<(Vec<(usize, Expansion)>, u64), TaggedError>;
    let results: Vec<WorkerResult> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = locals
            .into_iter()
            .enumerate()
            .map(|(me, local)| {
                let stealers = &stealers;
                let injector = &injector;
                let stop = &stop;
                scope.spawn(move |_| -> WorkerResult {
                    let mut done: Vec<(usize, Expansion)> = Vec::new();
                    let mut steals = 0u64;
                    loop {
                        let task = local.pop().or_else(|| {
                            injector
                                .steal()
                                .success()
                                .or_else(|| {
                                    stealers
                                        .iter()
                                        .enumerate()
                                        .filter(|(victim, _)| *victim != me)
                                        .find_map(|(_, s)| s.steal().success())
                                })
                                .inspect(|_| steals += 1)
                        });
                        let Some(task) = task else { break };
                        let mut out = Expansion::default();
                        for (i, (g, c, m)) in frontier[task.start..task.end].iter().enumerate() {
                            if i % DEADLINE_POLL_STRIDE == 0 {
                                if stop.load(Ordering::Relaxed) {
                                    return Ok((done, steals));
                                }
                                if opts.deadline.expired() {
                                    stop.store(true, Ordering::Relaxed);
                                    return Err((
                                        usize::MAX,
                                        // steps/expansions are filled in by
                                        // the caller.
                                        ExactError::Interrupted {
                                            steps: 0,
                                            expansions: 0,
                                        },
                                    ));
                                }
                            }
                            if let Err(e) =
                                expand_config(model, scheduler, sym, g, c, m, opts, &mut out)
                            {
                                stop.store(true, Ordering::Relaxed);
                                return Err((task.ordinal, e));
                            }
                        }
                        done.push((task.ordinal, out));
                    }
                    Ok((done, steals))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("expansion worker panicked"))
            .collect()
    })
    .expect("crossbeam scope");

    let mut chunks: Vec<(usize, Expansion)> = Vec::new();
    let mut steals = 0u64;
    let mut first_err: Option<TaggedError> = None;
    for r in results {
        match r {
            Ok((done, s)) => {
                chunks.extend(done);
                steals += s;
            }
            Err((ordinal, e)) => {
                // Keep the error from the earliest chunk — the one the
                // sequential engine would have reported.
                if first_err.as_ref().is_none_or(|(o, _)| ordinal < *o) {
                    first_err = Some((ordinal, e));
                }
            }
        }
    }
    if let Some(err) = first_err {
        return Err(err);
    }
    // Deterministic merge: concatenate chunk outputs in ordinal order,
    // exactly reproducing the sequential iteration order.
    chunks.sort_unstable_by_key(|(ordinal, _)| *ordinal);
    let mut merged = Expansion::default();
    for (_, part) in chunks {
        merged.absorb(part);
    }
    Ok((merged, steals))
}

/// The enumeration engine's exploration state between global steps.
///
/// [`analyze`] drives it straight to the fixpoint; the sweep engine
/// ([`crate::sweep`]) instead snapshots it (it is `Clone`) at the last step
/// that provably did not depend on a swept parameter, and replays the
/// remainder once per grid point.
#[derive(Clone)]
pub(crate) struct EnumState {
    frontier: Weighted,
    terminal_acc: Weighted,
    discarded: HashMap<Guard, Rat>,
    pub(crate) stats: EngineStats,
}

impl EnumState {
    /// Builds the initial distribution: enumerate the (possibly random)
    /// state initializers of every node, then the cartesian product.
    pub(crate) fn init(
        model: &Model,
        scheduler: &dyn Scheduler,
        opts: &ExactOptions,
    ) -> Result<EnumState, ExactError> {
        let sym = symmetry_for(model, scheduler);
        let mut stats = EngineStats::default();
        let k = model.num_nodes();
        let mut initial: Vec<(Vec<Vec<Val>>, Rat, Guard)> =
            vec![(Vec::with_capacity(k), Rat::one(), Guard::top())];
        for node in 0..k {
            let prog = &model.programs[node];
            let node_branches = enumerate_eval_cached(
                &Guard::top(),
                opts.fm_pruning,
                opts.feasibility_cache.as_deref(),
                |driver| bayonet_net::eval_state_init(model, prog, driver),
            )?;
            let mut next = Vec::with_capacity(initial.len() * node_branches.len());
            for (states, mass, guard) in &initial {
                for b in &node_branches {
                    let Some(combined) = guard.conjoin(&b.guard) else {
                        continue; // contradictory parameter assumptions
                    };
                    let mut states = states.clone();
                    states.push(b.result.clone());
                    next.push((states, mass * &b.weight, combined));
                }
            }
            initial = next;
        }

        let mut frontier: Weighted = Vec::new();
        let mut terminal_acc: Weighted = Vec::new();
        for (states, mass, guard) in initial {
            let mut cfg = initial_config(model, states)?;
            // Canonicalize from the initial distribution onward: orbit
            // masses then evolve exactly under the permutation-invariant
            // step kernel, for any initial packet placement.
            canon_config(sym, &mut cfg, &mut stats.orbit_merges);
            if cfg.is_terminal() {
                terminal_acc.push((guard, cfg, mass));
            } else {
                frontier.push((guard, cfg, mass));
            }
        }
        frontier = compress(frontier, &mut stats);
        Ok(EnumState {
            frontier,
            terminal_acc,
            discarded: HashMap::new(),
            stats,
        })
    }

    /// Has the exploration reached its fixpoint (empty frontier)?
    pub(crate) fn done(&self) -> bool {
        self.frontier.is_empty()
    }

    /// Executes one global step: bound checks, then a (possibly parallel)
    /// expansion of the whole frontier, then merging.
    ///
    /// Callers must not invoke this once [`EnumState::done`] holds.
    pub(crate) fn step(
        &mut self,
        model: &Model,
        scheduler: &dyn Scheduler,
        opts: &ExactOptions,
        workers: usize,
        step_bound: u64,
    ) -> Result<(), ExactError> {
        let stats = &mut self.stats;
        stats.steps += 1;
        if stats.steps > step_bound {
            let mass: Rat = self
                .frontier
                .iter()
                .fold(Rat::zero(), |acc, (_, _, m)| acc + m);
            return Err(ExactError::Unterminated {
                live_configs: self.frontier.len(),
                mass: format!("{:.6}", mass.to_f64()),
            });
        }
        stats.peak_configs = stats.peak_configs.max(self.frontier.len());
        if self.frontier.len() > opts.max_configs {
            return Err(ExactError::ConfigLimit(opts.max_configs));
        }
        if opts.deadline.expired() {
            return Err(ExactError::Interrupted {
                steps: stats.steps - 1,
                expansions: stats.expansions,
            });
        }

        let sym = symmetry_for(model, scheduler);
        stats.expansions += self.frontier.len() as u64;
        let expansion = if workers > 1 && self.frontier.len() >= opts.par_threshold.max(2) {
            match expand_frontier_parallel(model, scheduler, sym, &self.frontier, opts, workers) {
                Ok((merged, steals)) => {
                    stats.steals += steals;
                    if let Some(pool) = &opts.pool {
                        pool.add_steals(steals);
                    }
                    merged
                }
                Err((_, e)) => {
                    return Err(match e {
                        ExactError::Interrupted { .. } => ExactError::Interrupted {
                            steps: stats.steps - 1,
                            expansions: stats.expansions,
                        },
                        other => other,
                    })
                }
            }
        } else {
            let mut out = Expansion::default();
            for (i, (g, c, m)) in self.frontier.iter().enumerate() {
                if i > 0 && i % DEADLINE_POLL_STRIDE == 0 && opts.deadline.expired() {
                    return Err(ExactError::Interrupted {
                        steps: stats.steps - 1,
                        expansions: stats.expansions,
                    });
                }
                expand_config(model, scheduler, sym, g, c, m, opts, &mut out)?;
            }
            out
        };
        self.stats.orbit_merges += expansion.orbit_merges;
        self.frontier.clear();
        self.terminal_acc.extend(expansion.terminal);
        for (g, m) in expansion.discarded {
            *self.discarded.entry(g).or_insert_with(Rat::zero) += &m;
        }
        self.frontier = if opts.merge_configs {
            compress(expansion.next, &mut self.stats)
        } else {
            expansion.next
        };
        Ok(())
    }

    /// Seals the exploration into an [`Analysis`]: merge and sort terminals,
    /// sort discarded mass. Feasibility-cache counters are the caller's
    /// responsibility (they are deltas against a shared cache).
    pub(crate) fn finish(self) -> Analysis {
        let mut stats = self.stats;
        // Terminal configurations are always merged: soundness does not
        // depend on it, and it keeps the posterior small.
        let terminals = compress(self.terminal_acc, &mut stats);
        stats.terminal_configs = terminals.len();
        let mut discarded: Vec<(Guard, Rat)> = self.discarded.into_iter().collect();
        discarded.sort_unstable_by(|(g1, _), (g2, _)| g1.cmp(g2));
        Analysis {
            terminals: terminals.into_iter().map(|(g, c, m)| (c, g, m)).collect(),
            discarded,
            stats,
        }
    }
}

/// Rebinds `opts` with a run-level feasibility cache: a caller-provided
/// cache is shared (its counters delta-reported), otherwise the run gets a
/// private one. Returns the cache and its counter snapshot.
pub(crate) fn run_cache_opts(
    opts: &ExactOptions,
) -> (Arc<FeasibilityCache>, ExactOptions, (u64, u64)) {
    let run_cache: Arc<FeasibilityCache> = opts.feasibility_cache.clone().unwrap_or_default();
    let counts_before = run_cache.counts();
    let opts = ExactOptions {
        feasibility_cache: Some(Arc::clone(&run_cache)),
        ..opts.clone()
    };
    (run_cache, opts, counts_before)
}

/// Leases extra expansion workers for a whole run: a big request holds its
/// crew from the shared pool (degrading gracefully when the pool is busy),
/// while `threads` is taken at face value without a pool. Returns the lease
/// guard (workers return to the pool on drop) and the effective crew size.
pub(crate) fn lease_workers(opts: &ExactOptions) -> (Option<crate::pool::PoolLease>, usize) {
    let requested = opts.threads.max(1);
    let lease = match &opts.pool {
        Some(pool) if requested > 1 => Some(pool.lease(requested - 1)),
        _ => None,
    };
    let workers = match &lease {
        Some(lease) => 1 + lease.granted(),
        None => requested,
    };
    (lease, workers)
}

/// The global step bound: the source's `num_steps N;` bounds the
/// exploration like the paper's generated `repeat N { step() };
/// assert(terminated())` (Figure 10), falling back to the options' safety
/// bound.
pub(crate) fn step_bound(model: &Model, opts: &ExactOptions) -> u64 {
    model.num_steps.unwrap_or(opts.max_global_steps)
}

/// Runs the exact engine to the termination fixpoint.
///
/// With `opts.threads > 1` the frontier expansion of each global step is
/// parallelized via per-worker deques with work stealing; the returned
/// [`Analysis`] is byte-identical to a single-threaded run.
///
/// # Errors
///
/// See [`ExactError`]. In particular, networks that cannot reach a terminal
/// configuration within `opts.max_global_steps` are reported rather than
/// looping forever.
pub fn analyze(
    model: &Model,
    scheduler: &dyn Scheduler,
    opts: &ExactOptions,
) -> Result<Analysis, ExactError> {
    // Run the pass pipeline unless the caller opted out or already did it
    // (serve and sweep optimize up front so one optimized model serves many
    // runs); the pipeline is semantics-preserving, so this changes engine
    // statistics, never posteriors.
    let optimized;
    let model = if opts.passes && model.opt_info().is_none() {
        optimized = bayonet_net::opt::optimize(model);
        &optimized
    } else {
        model
    };
    let engine = match opts.engine {
        // Auto resolves through the static cost model; the choice depends
        // only on the model, so posteriors (bit-identical across backends
        // anyway) and statistics stay deterministic.
        EngineKind::Auto => crate::planner::choose_exact(model),
        explicit => explicit,
    };
    if engine == EngineKind::Bdd && model.num_nodes() <= 64 {
        // The diagram backend packs per-node queue flags into a `u128` (two
        // bits per node); larger models fall back to enumeration, which has
        // no such bound.
        return crate::bdd_engine::analyze_bdd(model, scheduler, opts);
    }
    let bound = step_bound(model, opts);
    let (run_cache, opts, (hits_before, misses_before)) = run_cache_opts(opts);
    let (_lease, workers) = lease_workers(&opts);

    let mut state = EnumState::init(model, scheduler, &opts)?;
    while !state.done() {
        state.step(model, scheduler, &opts, workers, bound)?;
    }
    let mut analysis = state.finish();
    let (hits_after, misses_after) = run_cache.counts();
    analysis.stats.feasibility_hits = hits_after - hits_before;
    analysis.stats.feasibility_misses = misses_after - misses_before;
    Ok(analysis)
}
