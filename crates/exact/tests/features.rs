//! Tests for engine features beyond the core benchmarks: the stateful
//! rotor scheduler, source-level `num_steps` bounds, symbolic expectation
//! values, and engine diagnostics.

use bayonet_exact::{analyze, answer, ExactError, ExactOptions};
use bayonet_lang::parse;
use bayonet_net::{compile, scheduler_for, Model, Val};
use bayonet_num::Rat;

mod common;

fn model(src: &str) -> Model {
    compile(&parse(src).unwrap()).unwrap()
}

fn value(m: &Model, idx: usize) -> Rat {
    let analysis = analyze(m, &*scheduler_for(m), &common::test_options()).unwrap();
    answer(m, &analysis, &m.queries[idx], true)
        .unwrap()
        .rat()
        .clone()
}

const GOSSIP_K4_HEADER: &str = r#"
    packet_fields { dst }
    topology {
        nodes { S0, S1, S2, S3 }
        links {
            (S0, pt1) <-> (S1, pt1), (S0, pt2) <-> (S2, pt1),
            (S0, pt3) <-> (S3, pt1), (S1, pt2) <-> (S2, pt2),
            (S1, pt3) <-> (S3, pt2), (S2, pt3) <-> (S3, pt3)
        }
    }
    programs { S0 -> seed, S1 -> gossip, S2 -> gossip, S3 -> gossip }
"#;

const GOSSIP_BODY: &str = r#"
    init { packet -> (S0, pt1); }
    query expectation(infected@S0 + infected@S1 + infected@S2 + infected@S3);
    def seed(pkt, pt) state infected(0) {
        if infected == 0 { infected = 1; fwd(uniformInt(1, 3)); } else { drop; }
    }
    def gossip(pkt, pt) state infected(0) {
        if infected == 0 {
            infected = 1; dup;
            fwd(uniformInt(1, 3)); fwd(uniformInt(1, 3));
        } else { drop; }
    }
"#;

#[test]
fn rotor_scheduler_gives_the_scheduler_independent_gossip_value() {
    // The rotor scheduler is stateful (its cursor lives in the global
    // configuration); gossip's expectation is schedule-independent, so this
    // exercises scheduler state threading end to end.
    let src = format!("{GOSSIP_K4_HEADER} scheduler rotor; {GOSSIP_BODY}");
    let m = model(&src);
    assert_eq!(value(&m, 0), Rat::ratio(94, 27));
}

#[test]
fn rotor_scheduler_is_deterministic_but_fair() {
    // Under rotor, only program randomness remains: the analysis of the
    // seed-only network has exactly 3 terminals (one per first hop).
    let src = format!("{GOSSIP_K4_HEADER} scheduler rotor; {GOSSIP_BODY}");
    let m = model(&src);
    // Compare raw trace trees: symmetry reduction (uniform-scheduler only)
    // would mask the scheduler-branching effect this test measures.
    let opts = bayonet_exact::ExactOptions {
        passes: false,
        ..common::test_options()
    };
    let analysis = analyze(&m, &*scheduler_for(&m), &opts).unwrap();
    // Every step is deterministic except uniformInt draws: the trace tree
    // has far fewer configurations than under the uniform scheduler.
    let uniform_src = format!("{GOSSIP_K4_HEADER} scheduler uniform; {GOSSIP_BODY}");
    let uni = model(&uniform_src);
    let uni_analysis = analyze(&uni, &*scheduler_for(&uni), &opts).unwrap();
    assert!(analysis.stats.peak_configs < uni_analysis.stats.peak_configs);
}

#[test]
fn num_steps_bound_too_small_reports_untermination() {
    // Mirrors the paper's assert(terminated()) after `num_steps` steps.
    let src = r#"
        packet_fields { dst }
        num_steps 1;
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> fwd1, B -> sink }
        init { packet -> (A, pt1); }
        query probability(got@B == 1);
        def fwd1(pkt, pt) { fwd(1); }
        def sink(pkt, pt) state got(0) { got = 1; drop; }
    "#;
    let m = model(src);
    let err = analyze(&m, &*scheduler_for(&m), &common::test_options()).unwrap_err();
    assert!(matches!(err, ExactError::Unterminated { .. }), "{err}");
}

#[test]
fn num_steps_bound_large_enough_succeeds() {
    let src = r#"
        packet_fields { dst }
        num_steps 8;
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> fwd1, B -> sink }
        init { packet -> (A, pt1); }
        query probability(got@B == 1);
        def fwd1(pkt, pt) { fwd(1); }
        def sink(pkt, pt) state got(0) { got = 1; drop; }
    "#;
    let m = model(src);
    assert_eq!(value(&m, 0), Rat::one());
}

#[test]
fn expectation_of_a_symbolic_state_is_a_linear_expression() {
    let src = r#"
        packet_fields { dst }
        parameters { COST }
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> a, B -> b }
        init { packet -> (A, pt1); }
        query expectation(x@A);
        def a(pkt, pt) state x(0) {
            if flip(1/2) { x = COST; } else { x = COST + 2; }
            drop;
        }
        def b(pkt, pt) { drop; }
    "#;
    let m = model(src);
    let analysis = analyze(&m, &*scheduler_for(&m), &common::test_options()).unwrap();
    let result = answer(&m, &analysis, &m.queries[0], true).unwrap();
    // E[x] = COST + 1, a symbolic value on the single (trivial) cell.
    assert_eq!(result.cells.len(), 1);
    let Some(Val::Sym(e)) = &result.cells[0].value else {
        panic!(
            "expected a symbolic expectation, got {:?}",
            result.cells[0].value
        );
    };
    let cost = m.params.lookup("COST").unwrap();
    assert_eq!(e.coeff(cost), Rat::one());
    assert_eq!(*e.constant_part(), Rat::one());
}

#[test]
fn probability_query_splitting_on_symbolic_state() {
    // The query itself compares symbolic state with a constant: the answer
    // is piecewise over sign(COST - 5).
    let src = r#"
        packet_fields { dst }
        parameters { COST }
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> a, B -> b }
        init { packet -> (A, pt1); }
        query probability(x@A < 5);
        def a(pkt, pt) state x(0) {
            if flip(1/3) { x = COST; } else { x = 7; }
            drop;
        }
        def b(pkt, pt) { drop; }
    "#;
    let m = model(src);
    let analysis = analyze(&m, &*scheduler_for(&m), &common::test_options()).unwrap();
    let result = answer(&m, &analysis, &m.queries[0], true).unwrap();
    assert_eq!(result.cells.len(), 3);
    let vals: Vec<Rat> = result
        .cells
        .iter()
        .map(|c| c.value.as_ref().unwrap().as_rat().unwrap().clone())
        .collect();
    // COST < 5: P = 1/3 (x=COST qualifies); COST == 5 or COST > 5: P = 0.
    assert_eq!(vals[0], Rat::ratio(1, 3));
    assert_eq!(vals[1], Rat::zero());
    assert_eq!(vals[2], Rat::zero());
}

#[test]
fn engine_stats_are_plausible() {
    let src = r#"
        packet_fields { dst }
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> a, B -> b }
        init { packet -> (A, pt1); }
        query probability(got@B == 1);
        def a(pkt, pt) { if flip(1/2) { fwd(1); } else { drop; } }
        def b(pkt, pt) state got(0) { got = 1; drop; }
    "#;
    let m = model(src);
    let analysis = analyze(&m, &*scheduler_for(&m), &common::test_options()).unwrap();
    assert!(analysis.stats.steps >= 3);
    assert!(analysis.stats.expansions >= 3);
    assert_eq!(analysis.stats.terminal_configs, 2); // delivered vs dropped
    assert!(analysis.stats.peak_configs >= 1);
}

#[test]
fn config_limit_is_enforced() {
    let src = format!("{GOSSIP_K4_HEADER} scheduler uniform; {GOSSIP_BODY}");
    let m = model(&src);
    let err = analyze(
        &m,
        &*scheduler_for(&m),
        &ExactOptions {
            max_configs: 10,
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, ExactError::ConfigLimit(10)));
}

#[test]
fn parallel_expansion_matches_single_threaded() {
    // Parallel frontier expansion must be a pure performance knob: the
    // posterior is identical (merging happens after the parallel phase).
    let src = format!("{GOSSIP_K4_HEADER} scheduler uniform; {GOSSIP_BODY}");
    let m = model(&src);
    let single = analyze(&m, &*scheduler_for(&m), &common::test_options()).unwrap();
    let parallel = analyze(
        &m,
        &*scheduler_for(&m),
        &ExactOptions {
            threads: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let a = answer(&m, &single, &m.queries[0], true).unwrap();
    let b = answer(&m, &parallel, &m.queries[0], true).unwrap();
    assert_eq!(a.rat(), b.rat());
    assert_eq!(single.total_terminal_mass(), parallel.total_terminal_mass());
}

#[test]
fn expired_deadline_interrupts_analysis() {
    let src = format!("{GOSSIP_K4_HEADER} scheduler uniform; {GOSSIP_BODY}");
    let m = model(&src);
    let err = analyze(
        &m,
        &*scheduler_for(&m),
        &ExactOptions {
            deadline: bayonet_net::Deadline::after(std::time::Duration::ZERO),
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, ExactError::Interrupted { .. }), "{err}");
    assert!(err.to_string().contains("interrupted by deadline"), "{err}");
}

#[test]
fn cancel_handle_interrupts_analysis() {
    // A pre-cancelled handle is indistinguishable from a deadline that
    // fired mid-run: the engine must stop at its next poll point.
    let src = format!("{GOSSIP_K4_HEADER} scheduler uniform; {GOSSIP_BODY}");
    let m = model(&src);
    let mut deadline = bayonet_net::Deadline::unlimited();
    let handle = deadline.cancel_handle();
    handle.cancel();
    let err = analyze(
        &m,
        &*scheduler_for(&m),
        &ExactOptions {
            deadline,
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, ExactError::Interrupted { .. }), "{err}");
}

#[test]
fn unlimited_deadline_changes_nothing() {
    let src = format!("{GOSSIP_K4_HEADER} scheduler uniform; {GOSSIP_BODY}");
    let m = model(&src);
    let analysis = analyze(
        &m,
        &*scheduler_for(&m),
        &ExactOptions {
            deadline: bayonet_net::Deadline::unlimited(),
            ..Default::default()
        },
    )
    .unwrap();
    let v = answer(&m, &analysis, &m.queries[0], true).unwrap();
    assert_eq!(v.rat().clone(), Rat::ratio(94, 27));
}
