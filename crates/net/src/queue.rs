//! Packets and capacity-bounded packet queues.
//!
//! Queues are the stateful heart of the Bayonet model: congestion *is* the
//! event that an enqueue on a full queue silently drops the packet (the
//! definition of `::` in paper §3.1). Both input and output queues are
//! bounded.

use std::collections::VecDeque;
use std::fmt;

use crate::value::Val;

/// A packet: values for each declared header field (by field index).
/// A freshly created packet has all fields 0 (rule L-New).
///
/// The derived ordering is structural, used only as a canonical sort key
/// (the exact engine orders merged configurations deterministically).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Packet {
    fields: Vec<Val>,
}

impl Packet {
    /// A fresh packet with `nfields` zeroed fields.
    pub fn fresh(nfields: usize) -> Packet {
        Packet {
            fields: vec![Val::zero(); nfields],
        }
    }

    /// Reads field `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range (fields are resolved statically).
    pub fn field(&self, idx: usize) -> &Val {
        &self.fields[idx]
    }

    /// Writes field `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_field(&mut self, idx: usize, v: Val) {
        self.fields[idx] = v;
    }

    /// Number of fields.
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt[")?;
        for (i, v) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str("]")
    }
}

/// An entry in a queue: a packet tagged with a port (the arrival port for
/// input queues, the departure port for output queues).
pub type QueueEntry = (Packet, u32);

/// A capacity-bounded FIFO packet queue.
///
/// Enqueue operations on a full queue are silent no-ops — packets are
/// *dropped*, which is how congestion manifests (paper §3.1).
///
/// # Examples
///
/// ```
/// use bayonet_net::{Packet, PktQueue};
///
/// let mut q = PktQueue::new(2);
/// assert!(q.push_back((Packet::fresh(0), 1)));
/// assert!(q.push_back((Packet::fresh(0), 2)));
/// // Third enqueue overflows and is dropped:
/// assert!(!q.push_back((Packet::fresh(0), 3)));
/// assert_eq!(q.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PktQueue {
    items: VecDeque<QueueEntry>,
    capacity: usize,
}

impl PktQueue {
    /// An empty queue with the given capacity.
    pub fn new(capacity: usize) -> PktQueue {
        PktQueue {
            items: VecDeque::new(),
            capacity,
        }
    }

    /// The queue's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of queued packets.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Returns `true` if the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Enqueues at the back (the `::` enqueue of §3.1, used by `fwd` and by
    /// packet delivery). Returns `false` if the queue was full and the
    /// packet was dropped.
    pub fn push_back(&mut self, entry: QueueEntry) -> bool {
        if self.is_full() {
            false
        } else {
            self.items.push_back(entry);
            true
        }
    }

    /// Enqueues at the *front* (rules L-New and L-Dup prepend, making the
    /// fresh/duplicated packet the new head). Returns `false` if dropped.
    pub fn push_front(&mut self, entry: QueueEntry) -> bool {
        if self.is_full() {
            false
        } else {
            self.items.push_front(entry);
            true
        }
    }

    /// The head entry, if any.
    pub fn head(&self) -> Option<&QueueEntry> {
        self.items.front()
    }

    /// Mutable access to the head entry (for `pkt.f = e`).
    pub fn head_mut(&mut self) -> Option<&mut QueueEntry> {
        self.items.front_mut()
    }

    /// Removes and returns the head entry.
    pub fn pop_front(&mut self) -> Option<QueueEntry> {
        self.items.pop_front()
    }

    /// Iterates over entries from head to tail.
    pub fn iter(&self) -> impl Iterator<Item = &QueueEntry> + '_ {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(tag: i64) -> Packet {
        let mut p = Packet::fresh(1);
        p.set_field(0, Val::int(tag));
        p
    }

    #[test]
    fn fifo_order() {
        let mut q = PktQueue::new(10);
        q.push_back((pkt(1), 1));
        q.push_back((pkt(2), 2));
        assert_eq!(q.pop_front().unwrap().0, pkt(1));
        assert_eq!(q.pop_front().unwrap().0, pkt(2));
        assert!(q.pop_front().is_none());
    }

    #[test]
    fn push_front_becomes_head() {
        let mut q = PktQueue::new(10);
        q.push_back((pkt(1), 1));
        q.push_front((pkt(2), 0));
        assert_eq!(q.head().unwrap().0, pkt(2));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn overflow_drops_silently() {
        let mut q = PktQueue::new(2);
        assert!(q.push_back((pkt(1), 1)));
        assert!(q.push_front((pkt(2), 1)));
        assert!(!q.push_back((pkt(3), 1)));
        assert!(!q.push_front((pkt(4), 1)));
        assert_eq!(q.len(), 2);
        // Contents unchanged: head is pkt2, tail pkt1.
        assert_eq!(q.head().unwrap().0, pkt(2));
    }

    #[test]
    fn zero_capacity_queue_drops_everything() {
        let mut q = PktQueue::new(0);
        assert!(!q.push_back((pkt(1), 1)));
        assert!(q.is_empty() && q.is_full());
    }

    #[test]
    fn head_mut_edits_in_place() {
        let mut q = PktQueue::new(2);
        q.push_back((pkt(1), 1));
        q.head_mut().unwrap().0.set_field(0, Val::int(42));
        assert_eq!(*q.head().unwrap().0.field(0), Val::int(42));
    }

    #[test]
    fn fresh_packet_is_all_zero() {
        let p = Packet::fresh(3);
        assert_eq!(p.num_fields(), 3);
        for i in 0..3 {
            assert_eq!(*p.field(i), Val::zero());
        }
    }
}
