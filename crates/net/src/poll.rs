//! Readiness polling and file-descriptor utilities for the serve layer.
//!
//! The HTTP server's event loop needs three things the standard library
//! does not expose: `epoll` readiness notification, a way to raise the
//! process's open-file limit, and a cheap count of the fds currently open
//! (for leak assertions in tests). All three are thin wrappers over raw
//! Linux syscalls, declared here directly so the workspace stays free of
//! external dependencies.
//!
//! This is the only module in the crate that uses `unsafe`; every unsafe
//! block is a single FFI call whose arguments are owned, live, and sized
//! by the safe wrapper around it. Everything above this module — the event
//! loop, the connection state machines — is safe code driving [`Poller`].
#![allow(unsafe_code)]

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

// Raw syscall surface. These symbols live in libc, which is always linked
// on the platforms this crate targets (std itself depends on it).
mod sys {
    use std::os::raw::c_int;

    /// Mirror of the kernel's `struct epoll_event`. The x86_64 syscall ABI
    /// declares it packed; other architectures use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;

    pub const RLIMIT_NOFILE: c_int = 7;

    #[repr(C)]
    pub struct Rlimit {
        pub cur: u64,
        pub max: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    }
}

/// Which readiness events a registration asks for. Registrations are
/// always edge-triggered: the poller reports a transition once and the
/// caller is expected to read/write until `WouldBlock`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd becomes readable (or the peer half-closes).
    pub readable: bool,
    /// Wake when the fd becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Readable and writable — the usual registration for a connection
    /// whose state machine both reads requests and flushes responses.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn bits(self) -> u32 {
        let mut bits = sys::EPOLLET | sys::EPOLLRDHUP;
        if self.readable {
            bits |= sys::EPOLLIN;
        }
        if self.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd is readable (data, or EOF, pending).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer closed its end (or the fd errored); the connection should
    /// be read to EOF and torn down.
    pub hangup: bool,
}

/// An edge-triggered `epoll` instance.
///
/// Tokens are caller-chosen `u64`s carried back verbatim in events; the
/// poller itself keeps no per-fd state beyond the kernel's interest list.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates a new epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure (fd exhaustion, mostly).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: no pointers; returns an owned fd or -1.
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, event: Option<sys::EpollEvent>) -> io::Result<()> {
        let mut event = event;
        let ptr = event
            .as_mut()
            .map_or(std::ptr::null_mut(), |e| e as *mut sys::EpollEvent);
        // SAFETY: `ptr` is null (DEL) or points at a live, properly laid
        // out EpollEvent for the duration of the call; `fd` validity is
        // the kernel's to check (EBADF comes back as an error).
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, ptr) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with `token` for edge-triggered `interest`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (e.g. the fd is already registered).
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            sys::EPOLL_CTL_ADD,
            fd,
            Some(sys::EpollEvent {
                events: interest.bits(),
                data: token,
            }),
        )
    }

    /// Changes the registration of an already-added `fd`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            sys::EPOLL_CTL_MOD,
            fd,
            Some(sys::EpollEvent {
                events: interest.bits(),
                data: token,
            }),
        )
    }

    /// Removes `fd` from the interest list. Removal of an fd that was
    /// already closed (and therefore auto-deregistered) is not an error at
    /// this layer; callers tearing down connections should close the
    /// socket *after* calling this.
    pub fn remove(&self, fd: RawFd) {
        let _ = self.ctl(sys::EPOLL_CTL_DEL, fd, None);
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` blocks indefinitely), appending the ready events to
    /// `out`. Returns the number of events delivered; `0` means the wait
    /// timed out.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failure. `EINTR` is retried internally.
    pub fn wait(&self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<usize> {
        const MAX_EVENTS: usize = 1024;
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 100µs timeout still sleeps instead of spinning.
            Some(d) => d
                .as_millis()
                .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as i32,
        };
        let n = loop {
            // SAFETY: `buf` is a live array of MAX_EVENTS properly laid out
            // events; the kernel writes at most `maxevents` entries.
            let rc = unsafe {
                sys::epoll_wait(self.epfd, buf.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms)
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &buf[..n] {
            let events = ev.events;
            out.push(PollEvent {
                token: ev.data,
                readable: events & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0,
                writable: events & sys::EPOLLOUT != 0,
                hangup: events & (sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: `epfd` is owned by this Poller and closed exactly once.
        unsafe { sys::close(self.epfd) };
    }
}

/// The process's open-file limit as `(soft, hard)`.
///
/// # Errors
///
/// Propagates `getrlimit` failure.
pub fn nofile_limit() -> io::Result<(u64, u64)> {
    let mut rlim = sys::Rlimit { cur: 0, max: 0 };
    // SAFETY: `rlim` is a live, properly laid out Rlimit the kernel fills.
    let rc = unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut rlim) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok((rlim.cur, rlim.max))
}

/// Raises the soft open-file limit to the hard limit and returns the new
/// `(soft, hard)` pair. A server holding tens of thousands of concurrent
/// connections calls this at startup so the distribution default of 1024
/// fds does not masquerade as load shedding.
///
/// # Errors
///
/// Propagates `getrlimit`/`setrlimit` failure; the limit is unchanged on
/// error.
pub fn raise_nofile_limit() -> io::Result<(u64, u64)> {
    let (soft, hard) = nofile_limit()?;
    if soft >= hard {
        return Ok((soft, hard));
    }
    let rlim = sys::Rlimit {
        cur: hard,
        max: hard,
    };
    // SAFETY: `rlim` is a live, properly laid out Rlimit read by the kernel.
    let rc = unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &rlim) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok((hard, hard))
}

/// The number of file descriptors this process currently has open, read
/// from `/proc/self/fd`. Test suites assert this returns to its baseline
/// after a stress run — the cheapest possible fd-leak detector.
///
/// # Errors
///
/// Propagates the directory read failure (non-Linux systems without
/// `/proc`, mostly).
pub fn open_fd_count() -> io::Result<usize> {
    // The readdir itself holds one fd; exclude it.
    Ok(std::fs::read_dir("/proc/self/fd")?
        .count()
        .saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn poller_reports_accept_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing pending: a short wait times out with zero events.
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(n >= 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn poller_is_edge_triggered() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 1, Interest::BOTH).unwrap();

        (&client).write_all(b"hello").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        // Edge triggering: without draining the socket, a second wait does
        // not re-report the same readable edge.
        let mut events2 = Vec::new();
        let before = std::time::Instant::now();
        let n = poller
            .wait(&mut events2, Some(Duration::from_millis(50)))
            .unwrap();
        let readable_again = events2.iter().any(|e| e.token == 1 && e.readable);
        assert!(
            n == 0 || !readable_again || before.elapsed() >= Duration::from_millis(50),
            "level-triggered behavior detected: {events2:?}"
        );

        // Draining to WouldBlock re-arms the edge.
        let mut buf = [0u8; 16];
        let mut server_ref = &server;
        assert_eq!(server_ref.read(&mut buf).unwrap(), 5);
        (&client).write_all(b"again").unwrap();
        let mut events3 = Vec::new();
        poller
            .wait(&mut events3, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events3.iter().any(|e| e.token == 1 && e.readable));
    }

    #[test]
    fn hangup_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 9, Interest::READ).unwrap();
        drop(client);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 9 && e.hangup));
    }

    #[test]
    fn limits_are_readable_and_raisable() {
        let (soft, hard) = nofile_limit().unwrap();
        assert!(soft > 0 && hard >= soft);
        let (new_soft, new_hard) = raise_nofile_limit().unwrap();
        assert_eq!(new_soft, new_hard);
        assert!(new_soft >= soft);
    }

    #[test]
    fn fd_count_tracks_opens() {
        let before = open_fd_count().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let after = open_fd_count().unwrap();
        assert!(after > before, "{before} -> {after}");
        drop(listener);
        assert!(open_fd_count().unwrap() <= after - 1);
    }
}
