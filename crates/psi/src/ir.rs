//! PSI-core: a minimal first-order probabilistic intermediate language.
//!
//! The paper's toolchain translates Bayonet programs into PSI, a general
//! probabilistic programming language, and lets PSI's engines do the
//! inference (§4). PSI-core is the fragment of PSI that the translation
//! actually exercises: rational scalars, tuples, growable arrays (queues),
//! `flip`/`uniformInt`, `observe`, conditionals, and loops — enough to
//! express the generated `Network.main()` of Figure 10 after static
//! unrolling of the per-node dispatch.
//!
//! The IR is executed by [`crate::interp`], giving the reproduction an
//! independent inference path used for differential testing against the
//! direct engines.

use bayonet_num::Rat;

pub use bayonet_lang::BinOp;

/// A global variable slot.
pub type VarId = usize;

/// PSI-core runtime values.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum PValue {
    /// A rational scalar.
    Rat(Rat),
    /// A fixed-width tuple.
    Tuple(Vec<PValue>),
    /// A growable array (used for queues and packets).
    Array(Vec<PValue>),
}

impl PValue {
    /// The integer-coded boolean / scalar, if this is a scalar.
    pub fn as_rat(&self) -> Option<&Rat> {
        match self {
            PValue::Rat(r) => Some(r),
            _ => None,
        }
    }

    /// 0/1 encoding of a boolean.
    pub fn from_bool(b: bool) -> PValue {
        PValue::Rat(Rat::from_bool(b))
    }

    /// Integer scalar.
    pub fn int(v: i64) -> PValue {
        PValue::Rat(Rat::int(v))
    }
}

/// PSI-core expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum PExpr {
    /// Rational constant.
    Const(Rat),
    /// Global variable read.
    Var(VarId),
    /// Tuple constructor.
    Tuple(Vec<PExpr>),
    /// Array literal.
    ArrayLit(Vec<PExpr>),
    /// Tuple projection.
    Proj(Box<PExpr>, usize),
    /// Array indexing.
    Index(Box<PExpr>, Box<PExpr>),
    /// Array length.
    Len(Box<PExpr>),
    /// Binary operation on scalars (comparisons yield 0/1).
    Bin(BinOp, Box<PExpr>, Box<PExpr>),
    /// Logical negation.
    Not(Box<PExpr>),
    /// Arithmetic negation.
    Neg(Box<PExpr>),
    /// Bernoulli draw.
    Flip(Box<PExpr>),
    /// Uniform integer draw (inclusive bounds).
    UniformInt(Box<PExpr>, Box<PExpr>),
}

/// An assignable place.
#[derive(Clone, Debug, PartialEq)]
pub enum LValue {
    /// A global variable.
    Var(VarId),
    /// An element of an array lvalue.
    Index(Box<LValue>, PExpr),
    /// A component of a tuple lvalue.
    Proj(Box<LValue>, usize),
}

/// PSI-core statements.
#[derive(Clone, Debug, PartialEq)]
pub enum PStmt {
    /// `place = expr;`
    Assign(LValue, PExpr),
    /// `if cond { ... } else { ... }`
    If(PExpr, Vec<PStmt>, Vec<PStmt>),
    /// `while cond { ... }`
    While(PExpr, Vec<PStmt>),
    /// `observe(cond);` — failure discards the trace.
    Observe(PExpr),
    /// Append to an array.
    PushBack(LValue, PExpr),
    /// Prepend to an array.
    PushFront(LValue, PExpr),
    /// Pop the first element of `queue` into `dest` (if given).
    ///
    /// Popping an empty array is a runtime error — the translation always
    /// guards pops with emptiness checks, mirroring the rule premises of
    /// Figure 5.
    PopFront {
        /// Where to store the popped element, if anywhere.
        dest: Option<LValue>,
        /// The array to pop from.
        queue: LValue,
    },
    /// Raise a hard error with the given message (generated for states the
    /// translation knows are unreachable or fatal, e.g. Figure 10's
    /// `assert(terminated())`).
    Trap(String),
}

/// A complete PSI-core program: globals (with initializer expressions,
/// evaluated in order and allowed to draw randomness), a body, and a result
/// expression evaluated on the final state.
#[derive(Clone, Debug, PartialEq)]
pub struct PProgram {
    /// Human-readable names for globals (diagnostics only).
    pub global_names: Vec<String>,
    /// Initializers, one per global, evaluated top to bottom.
    pub init: Vec<PExpr>,
    /// The program body (the unrolled `main()` of Figure 10).
    pub body: Vec<PStmt>,
    /// The returned query expression.
    pub result: PExpr,
}

impl PProgram {
    /// Number of global variables.
    pub fn num_globals(&self) -> usize {
        self.global_names.len()
    }
}
