//! # Bayonet: probabilistic inference for networks
//!
//! A from-scratch Rust reproduction of *Bayonet: Probabilistic Inference
//! for Networks* (Gehr, Misailovic, Tsankov, Vanbever, Wiesmann, Vechev —
//! PLDI 2018).
//!
//! Bayonet is (i) a probabilistic network programming language — topology,
//! per-node packet-processing programs with `flip`/`uniformInt` draws,
//! capacity-bounded queues, probabilistic schedulers, `observe`-based
//! Bayesian conditioning — and (ii) a system answering `probability(b)` and
//! `expectation(e)` queries about terminal network states, by compiling
//! networks to probabilistic programs and running exact (PSI-role) or
//! approximate (WebPPL-role, SMC) inference. Symbolic configuration
//! parameters turn inference into *synthesis*: query values are reported
//! piecewise over parameter-space cells, each with a concrete witness.
//!
//! ## Quickstart
//!
//! ```
//! use bayonet::Network;
//! use bayonet_num::Rat;
//!
//! let network = Network::from_source(r#"
//!     packet_fields { dst }
//!     topology { nodes { H0, H1 } links { (H0, pt1) <-> (H1, pt1) } }
//!     programs { H0 -> send, H1 -> recv }
//!     init { packet -> (H0, pt1); }
//!     query probability(got@H1 == 1);
//!
//!     def send(pkt, pt) {
//!         if flip(3/4) { fwd(1); } else { drop; }
//!     }
//!     def recv(pkt, pt) state got(0) { got = 1; drop; }
//! "#)?;
//!
//! // Exact inference (the paper's PSI backend):
//! let report = network.exact()?;
//! assert_eq!(*report.results[0].rat(), Rat::ratio(3, 4));
//!
//! // Approximate inference (the paper's WebPPL/SMC backend):
//! let est = network.smc(0, &Default::default())?;
//! assert!((est.value - 0.75).abs() < 0.05);
//! # Ok::<(), bayonet::Error>(())
//! ```
//!
//! ## Crate map
//!
//! * [`Network`] — parse → integrity-check → compile → infer façade.
//! * [`scenarios`] — builders for every benchmark of the paper's §5
//!   evaluation (congestion, reliability, gossip, Bayesian load-balancing,
//!   strategy inference), including the 30-node scaled variants.
//! * [`synthesize`] — parameter synthesis over symbolic link costs (§2.3).
//! * Re-exports of the underlying engines for advanced use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod network;
pub mod ospf;
pub mod scenarios;
mod synthesis;

pub use error::Error;
pub use network::{ExactReport, Network};
pub use scenarios::Sched;
pub use synthesis::{synthesize, synthesize_with, Objective, Synthesis, SynthesisOptions};

pub use bayonet_approx::{ApproxOptions, Estimate, SimEvent, Simulation};
pub use bayonet_exact::{
    plan_model, CellAnswer, ComputePool, EngineKind, EngineStats, ExactOptions, FeasibilityCache,
    Plan, PlanDecision, PlanEngine, PlanSignals, PlannerConfig, PoolStats, QueryResult,
};
pub use bayonet_lang::{check, parse, pretty_program};
pub use bayonet_net::opt;
pub use bayonet_net::opt::{OptInfo, OptReport, PassConfig};
pub use bayonet_net::{
    scheduler_for, DeterministicScheduler, Model, QueryKind, RotorScheduler, Scheduler,
    UniformScheduler, WeightedScheduler,
};
pub use bayonet_num::Rat;
