//! Regenerates **Figure 3** of the paper: the probability of congestion as
//! a piecewise function of the symbolic link costs COST_01, COST_02,
//! COST_21, plus the synthesized optimum (§2.3).
//!
//! Run with: `cargo run --release -p bayonet-bench --bin fig3`

use std::time::Instant;

use bayonet::{scenarios, synthesize, Objective, Sched};

fn main() -> Result<(), bayonet::Error> {
    let network = scenarios::congestion_example_symbolic(Sched::Uniform)?;
    let t0 = Instant::now();
    let synthesis = synthesize(&network, 0, Objective::Minimize)?;
    let elapsed = t0.elapsed();

    println!("Figure 3 — probability of congestion vs symbolic link costs");
    println!("(paper: 0.4487 / 0.4519 / 0.4787 with the same exact fractions)\n");
    println!(
        "{:<42} {:>26} {:>9}",
        "Symbolic constraint", "Probability", "(float)"
    );
    println!("{}", "-".repeat(80));
    for cell in &synthesis.result.cells {
        let v = cell.value.as_ref().unwrap().as_rat().unwrap();
        println!(
            "{:<42} {:>26} {:>9.4}",
            cell.constraint,
            v.to_string(),
            v.to_f64()
        );
    }
    println!("\nSynthesis (minimize congestion):");
    println!("  optimal constraint: {}", synthesis.constraint);
    println!(
        "  optimal value:      {} ≈ {:.4}",
        synthesis.value,
        synthesis.value.to_f64()
    );
    print!("  witness costs:     ");
    for (pid, v) in &synthesis.assignment {
        print!(" {} = {v}", network.model().params.name(*pid));
    }
    println!(
        "\n  total time: {:.2?} (paper: 65s per concrete PSI run)",
        elapsed
    );
    Ok(())
}
