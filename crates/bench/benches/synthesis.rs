//! Benchmark for Figure 3 / §2.3: exact symbolic inference over the three
//! OSPF cost parameters, piecewise answer extraction, and witness synthesis.

use criterion::{criterion_group, criterion_main, Criterion};

use bayonet::{scenarios, synthesize, Objective, Sched};

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3/synthesis");
    group.sample_size(10);

    let network = scenarios::congestion_example_symbolic(Sched::Uniform).unwrap();
    group.bench_function("symbolic_congestion_full", |b| {
        b.iter(|| {
            let s = synthesize(&network, 0, Objective::Minimize).unwrap();
            assert_eq!(s.result.cells.len(), 3);
            s.value
        })
    });

    group.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
