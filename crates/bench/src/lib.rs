//! Shared helpers for the Bayonet benchmark harness.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper's evaluation (§5): `table1`, `fig3`, `sec55`, `codesize`, and
//! `ablations`. The Criterion benches in `benches/` measure the same
//! workloads for performance tracking.

use std::time::{Duration, Instant};

use bayonet::{Error, Network};
use bayonet_num::Rat;

/// A measured exact-inference result for one query.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Exact value.
    pub value: Rat,
    /// Wall-clock time of the full run (analysis + query).
    pub elapsed: Duration,
}

/// Runs exact inference and returns the value of query `idx` with timing.
///
/// # Errors
///
/// Propagates inference errors.
pub fn time_exact(network: &Network, idx: usize) -> Result<Measured, Error> {
    let t0 = Instant::now();
    let report = network.exact()?;
    let elapsed = t0.elapsed();
    Ok(Measured {
        value: report.results[idx].rat().clone(),
        elapsed,
    })
}

/// Runs exact inference under explicit [`bayonet::ExactOptions`] (e.g. a
/// thread count) and returns the value of query `idx` with timing.
///
/// # Errors
///
/// Propagates inference errors.
pub fn time_exact_with(
    network: &Network,
    idx: usize,
    opts: &bayonet::ExactOptions,
) -> Result<Measured, Error> {
    let t0 = Instant::now();
    let report = network.exact_with(opts)?;
    let elapsed = t0.elapsed();
    Ok(Measured {
        value: report.results[idx].rat().clone(),
        elapsed,
    })
}

/// Runs SMC and returns `(estimate, timing)`.
///
/// # Errors
///
/// Propagates inference errors.
pub fn time_smc(
    network: &Network,
    idx: usize,
    particles: usize,
    seed: u64,
) -> Result<(bayonet::Estimate, Duration), Error> {
    let t0 = Instant::now();
    let est = network.smc(
        idx,
        &bayonet::ApproxOptions {
            particles,
            seed,
            ..Default::default()
        },
    )?;
    Ok((est, t0.elapsed()))
}

/// Formats a duration compactly (e.g. "1.24s", "87ms").
pub fn fmt_duration(d: Duration) -> String {
    if d.as_secs_f64() >= 1.0 {
        format!("{:.2}s", d.as_secs_f64())
    } else {
        format!("{}ms", d.as_millis())
    }
}

/// Counts non-empty, non-comment lines (the paper's code-size metric).
pub fn loc(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}
