//! In-process persistence tests: a server restarted on the same
//! `--cache-dir` must serve byte-identical cached results without
//! recomputing, and corrupt segment records must be skipped (counted,
//! never fatal).

use bayonet_serve::{start, ServerConfig, SEGMENT_FILE};

mod common;
use common::{metric, metrics, post_run, unique_dir, TINY};

fn config_with_dir(dir: &std::path::Path) -> ServerConfig {
    ServerConfig {
        cache_dir: Some(dir.to_path_buf()),
        ..common::test_config()
    }
}

#[test]
fn warm_reload_serves_identical_bytes_without_recomputation() {
    let dir = unique_dir("persist-warm");

    // First life: compute once, which must hit the engine and then be
    // persisted. Graceful shutdown flushes the write-behind queue.
    let handle = start(config_with_dir(&dir)).expect("start server");
    let (status, first) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{first}");
    let text = metrics(handle.addr());
    assert!(metric(&text, "bayonet_engine_expansions_total") > 0);
    assert_eq!(metric(&text, "bayonet_cache_persist_load_ok_total"), 0);
    handle.shutdown();

    let segment = dir.join(SEGMENT_FILE);
    assert!(segment.is_file(), "no segment at {}", segment.display());

    // Second life: the result comes back from disk — same bytes, zero
    // engine work, and the hit is visible in the metrics.
    let handle = start(config_with_dir(&dir)).expect("restart server");
    let text = metrics(handle.addr());
    assert!(metric(&text, "bayonet_cache_persist_load_ok_total") >= 1);
    assert_eq!(metric(&text, "bayonet_cache_persist_load_corrupt_total"), 0);

    let (status, second) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{second}");
    assert_eq!(first, second, "persisted result must be byte-identical");

    let text = metrics(handle.addr());
    assert_eq!(metric(&text, "bayonet_cache_hits_total"), 1);
    assert_eq!(metric(&text, "bayonet_engine_expansions_total"), 0);
    handle.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_record_is_skipped_and_counted() {
    let dir = unique_dir("persist-flip");

    let handle = start(config_with_dir(&dir)).expect("start server");
    let (status, body) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{body}");
    handle.shutdown();

    // Flip one byte inside the record payload (header is 8 bytes, each
    // record carries an 8-byte frame and an 8-byte key before the body).
    let segment = dir.join(SEGMENT_FILE);
    let mut bytes = std::fs::read(&segment).expect("read segment");
    assert!(bytes.len() > 32, "segment too small: {}", bytes.len());
    bytes[30] ^= 0x40;
    std::fs::write(&segment, &bytes).expect("rewrite segment");

    // The damaged record is skipped — not loaded, not fatal — and the
    // server recomputes the same answer from scratch.
    let handle = start(config_with_dir(&dir)).expect("restart server");
    let text = metrics(handle.addr());
    assert!(metric(&text, "bayonet_cache_persist_load_corrupt_total") >= 1);
    assert_eq!(metric(&text, "bayonet_cache_persist_load_ok_total"), 0);

    let (status, recomputed) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{recomputed}");
    assert_eq!(body, recomputed, "recompute must match the original");
    let text = metrics(handle.addr());
    assert_eq!(metric(&text, "bayonet_cache_hits_total"), 0);
    assert!(metric(&text, "bayonet_engine_expansions_total") > 0);
    handle.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_is_truncated_and_the_server_recovers() {
    let dir = unique_dir("persist-torn");

    let handle = start(config_with_dir(&dir)).expect("start server");
    let (status, body) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{body}");
    handle.shutdown();

    // Chop a few bytes off the tail, as a crash mid-append would.
    let segment = dir.join(SEGMENT_FILE);
    let bytes = std::fs::read(&segment).expect("read segment");
    std::fs::write(&segment, &bytes[..bytes.len() - 3]).expect("truncate");

    let handle = start(config_with_dir(&dir)).expect("restart server");
    let text = metrics(handle.addr());
    assert!(metric(&text, "bayonet_cache_persist_load_corrupt_total") >= 1);

    // The torn record was discarded and the segment re-framed: a new
    // result appends cleanly and survives the *next* restart.
    let (status, recomputed) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{recomputed}");
    assert_eq!(body, recomputed);
    handle.shutdown();

    let handle = start(config_with_dir(&dir)).expect("third start");
    let text = metrics(handle.addr());
    assert!(metric(&text, "bayonet_cache_persist_load_ok_total") >= 1);
    let (status, replayed) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{replayed}");
    assert_eq!(body, replayed);
    let text = metrics(handle.addr());
    assert_eq!(metric(&text, "bayonet_cache_hits_total"), 1);
    handle.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persistence_off_exposes_no_persist_metrics_and_writes_nothing() {
    let handle = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: None,
        ..ServerConfig::default()
    })
    .expect("start server");
    let (status, body) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{body}");
    let text = metrics(handle.addr());
    assert!(!text.contains("bayonet_cache_persist_"), "{text}");
    // The always-on eviction counter is still exported.
    assert_eq!(metric(&text, "bayonet_cache_evictions_total"), 0);
    handle.shutdown();
}

/// Batch items persist through the same write-behind path as single runs:
/// a batch computed in one life is served from disk in the next, item for
/// item, byte for byte.
#[test]
fn batch_results_survive_a_restart() {
    let dir = unique_dir("persist-batch");
    let batch_body = format!(
        r#"{{"source":{},"items":[{{}},{{"engine":"smc","particles":60,"seed":7}}]}}"#,
        bayonet_serve::Json::Str(TINY.into())
    );

    let handle = start(config_with_dir(&dir)).expect("start server");
    let (status, payload) = common::post_batch(handle.addr(), &batch_body);
    assert_eq!(status, 200, "{payload}");
    let mut first = common::parse_frames(&payload);
    first.sort_by_key(|f| f.index);
    assert_eq!(first.len(), 2);
    handle.shutdown();

    // Second life: both items come back from disk with identical bytes
    // and zero engine work.
    let handle = start(config_with_dir(&dir)).expect("restart server");
    let text = metrics(handle.addr());
    assert!(metric(&text, "bayonet_cache_persist_load_ok_total") >= 2);

    let (status, payload) = common::post_batch(handle.addr(), &batch_body);
    assert_eq!(status, 200, "{payload}");
    let mut second = common::parse_frames(&payload);
    second.sort_by_key(|f| f.index);
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.body, b.body, "item {} changed across restart", a.index);
    }
    let text = metrics(handle.addr());
    assert_eq!(metric(&text, "bayonet_cache_hits_total"), 2);
    assert_eq!(metric(&text, "bayonet_engine_expansions_total"), 0);
    handle.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

/// The cache key incorporates the engine: an `enum` result must never be
/// served to a `"engine": "bdd"` request (or vice versa), in memory *or*
/// from disk. Both orders are exercised — enum-then-bdd computes twice in
/// the first life, and the restarted server replays bdd-then-enum from the
/// persisted segment, each request matching its own engine's bytes.
#[test]
fn engine_is_part_of_the_persisted_cache_key() {
    let dir = unique_dir("persist-engine");
    let post = |addr, engine: &str| {
        let body = format!(
            r#"{{"source":{},"engine":"{engine}"}}"#,
            bayonet_serve::Json::Str(TINY.into())
        );
        let (status, _, payload) = common::http(addr, "POST", "/v1/run", &body);
        (status, payload)
    };

    // First life, enum then bdd: the second request must MISS the cache
    // and run the diagram backend, not replay the enumeration result.
    let handle = start(config_with_dir(&dir)).expect("start server");
    let (status, enum_body) = post(handle.addr(), "enum");
    assert_eq!(status, 200, "{enum_body}");
    let (status, bdd_body) = post(handle.addr(), "bdd");
    assert_eq!(status, 200, "{bdd_body}");
    let text = metrics(handle.addr());
    assert_eq!(
        metric(&text, "bayonet_cache_hits_total"),
        0,
        "bdd request was served the enum entry"
    );
    assert!(metric(&text, "bayonet_bdd_nodes_total") > 0);
    // Same posterior, different engine echo (`merge_hits` is also allowed
    // to differ — the backends count merges at different granularities).
    assert_ne!(enum_body, bdd_body);
    let enum_doc = bayonet_serve::parse_json(&enum_body).expect("enum json");
    let bdd_doc = bayonet_serve::parse_json(&bdd_body).expect("bdd json");
    assert_eq!(
        enum_doc.get("engine").and_then(bayonet_serve::Json::as_str),
        Some("exact")
    );
    assert_eq!(
        bdd_doc.get("engine").and_then(bayonet_serve::Json::as_str),
        Some("bdd")
    );
    for field in ["results", "z", "discarded"] {
        assert_eq!(
            enum_doc.get(field).map(|v| v.to_string()),
            bdd_doc.get(field).map(|v| v.to_string()),
            "posterior field `{field}` diverges between engines"
        );
    }
    handle.shutdown();

    // Second life, REVERSED order: both answers come back from disk,
    // byte-identical to their own engine's first-life response, with zero
    // engine work.
    let handle = start(config_with_dir(&dir)).expect("restart server");
    let text = metrics(handle.addr());
    assert!(metric(&text, "bayonet_cache_persist_load_ok_total") >= 2);

    let (status, bdd_replayed) = post(handle.addr(), "bdd");
    assert_eq!(status, 200, "{bdd_replayed}");
    assert_eq!(bdd_body, bdd_replayed, "bdd replay diverged");
    let (status, enum_replayed) = post(handle.addr(), "enum");
    assert_eq!(status, 200, "{enum_replayed}");
    assert_eq!(enum_body, enum_replayed, "enum replay diverged");

    let text = metrics(handle.addr());
    assert_eq!(metric(&text, "bayonet_cache_hits_total"), 2);
    assert_eq!(metric(&text, "bayonet_engine_expansions_total"), 0);
    assert_eq!(metric(&text, "bayonet_bdd_nodes_total"), 0);
    handle.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}
