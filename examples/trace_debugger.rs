//! Network-simulator mode (paper §6 compares Bayonet against simulators):
//! replay individual randomized runs of the §2 congestion example as
//! human-readable event logs, watching congestion drops happen — then ask
//! the inference engine for the exact probability of what you just saw.
//!
//! Run with: `cargo run --release --example trace_debugger`

use bayonet::{scenarios, ApproxOptions, Sched};

fn main() -> Result<(), bayonet::Error> {
    let network = scenarios::congestion_example(Sched::Uniform)?;

    println!("three randomized runs of the §2 example (watch for drops):\n");
    let mut congested = 0;
    for seed in 0..3u64 {
        let sim = network.simulate(&ApproxOptions {
            seed,
            ..Default::default()
        })?;
        println!("--- seed {seed} ---");
        print!("{}", sim.render(network.model()));
        if let Some(terminal) = &sim.terminal {
            // pkt_cnt is state slot 0 of H1 (node id 1 in this scenario).
            let h1 = network.model().node_id("H1").expect("H1 exists");
            let slot = network.model().state_slot(h1, "pkt_cnt").expect("pkt_cnt");
            let received = &terminal.nodes[h1].state[slot];
            println!("    H1 received {received} of 3 packets\n");
            if format!("{received}") != "3" {
                congested += 1;
            }
        }
    }

    println!("{congested}/3 sampled runs were congested.");
    let p = network.exact()?.results[0].rat().clone();
    println!(
        "exact probability of congestion: {p} ≈ {:.4} (paper §2.2: 0.4487)",
        p.to_f64()
    );
    Ok(())
}
