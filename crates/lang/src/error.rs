//! Error types for the Bayonet language front-end.

use std::fmt;

use crate::token::Span;

/// Phase in which a front-end error was detected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
    /// Static integrity checking (paper §4).
    Check,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Check => "check",
        })
    }
}

/// An error from the Bayonet language front-end, carrying the source
/// position where it was detected.
#[derive(Clone, Debug)]
pub struct LangError {
    phase: Phase,
    message: String,
    span: Option<Span>,
}

impl LangError {
    /// Creates a lexical error at `span`.
    pub fn lex(message: impl Into<String>, span: Span) -> Self {
        LangError {
            phase: Phase::Lex,
            message: message.into(),
            span: Some(span),
        }
    }

    /// Creates a parse error at `span`.
    pub fn parse(message: impl Into<String>, span: Span) -> Self {
        LangError {
            phase: Phase::Parse,
            message: message.into(),
            span: Some(span),
        }
    }

    /// Creates a static-check error, optionally positioned.
    pub fn check(message: impl Into<String>, span: Option<Span>) -> Self {
        LangError {
            phase: Phase::Check,
            message: message.into(),
            span,
        }
    }

    /// The phase that produced the error.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The human-readable message (without position).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The source position, if known.
    pub fn span(&self) -> Option<Span> {
        self.span
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(s) => write!(f, "{} error at {}: {}", self.phase, s, self.message),
            None => write!(f, "{} error: {}", self.phase, self.message),
        }
    }
}

impl std::error::Error for LangError {}
