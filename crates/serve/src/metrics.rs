//! Service metrics with Prometheus text exposition.
//!
//! A single [`Metrics`] registry is shared by all workers; counters are
//! grouped behind one mutex (contention is negligible next to inference
//! work), except the queue depth gauge which the accept loop updates
//! lock-free.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bayonet_exact::{ComputePool, EngineStats};

use crate::persist::PersistCounters;

/// Latency histogram bucket upper bounds, in seconds.
const BUCKETS: [f64; 8] = [0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0];

/// Bucket upper bounds for the planner's actual/predicted cost ratio.
/// Centered on 1.0: buckets below it are overestimates (the run beat the
/// prediction), above it underestimates.
const RATIO_BUCKETS: [f64; 9] = [0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 16.0];

#[derive(Default, Clone)]
struct Histogram {
    counts: [u64; BUCKETS.len()],
    total: u64,
    sum: f64,
}

impl Histogram {
    fn observe(&mut self, seconds: f64) {
        for (i, bound) in BUCKETS.iter().enumerate() {
            if seconds <= *bound {
                self.counts[i] += 1;
            }
        }
        self.total += 1;
        self.sum += seconds;
    }
}

#[derive(Default)]
struct Inner {
    /// (endpoint, status) → count.
    requests: BTreeMap<(String, u16), u64>,
    /// endpoint → latency histogram.
    latency: BTreeMap<String, Histogram>,
    cache_hits: u64,
    cache_misses: u64,
    /// Mirror of the LRU's lifetime eviction count (set, not incremented,
    /// so warm-load evictions are included).
    cache_evictions: u64,
    /// Batch endpoint totals: batches handled, items executed, items that
    /// ended in a per-item error frame, distinct canonical sources
    /// compiled, and items that reused a batch-local compiled source.
    batches: u64,
    batch_items: u64,
    batch_item_errors: u64,
    batch_compiles: u64,
    batch_source_reuse: u64,
    /// Sweep endpoint totals: sweeps handled per sharing route (`symbolic`,
    /// `prefix`, `per_point`, or `cached` when every point came from the
    /// result cache), grid points answered, points that produced an error
    /// frame, points answered by reusing shared work instead of a full
    /// exploration, and global steps of shared (run-once) exploration.
    sweeps: BTreeMap<String, u64>,
    sweep_points: u64,
    sweep_point_errors: u64,
    sweep_prefix_reuse: u64,
    sweep_prefix_steps: u64,
    /// Cumulative exact-engine work across all requests.
    engine_steps: u64,
    engine_expansions: u64,
    engine_merge_hits: u64,
    engine_peak_configs: u64,
    engine_steals: u64,
    /// Pass-pipeline totals: pass executions, random sites eliminated,
    /// constant guards folded (from [`bayonet_net::opt::OptReport`]), and
    /// frontier configurations replaced by their orbit representative
    /// (from [`EngineStats::orbit_merges`]).
    opt_pass_runs: u64,
    opt_flips_eliminated: u64,
    opt_guards_folded: u64,
    opt_orbit_states_merged: u64,
    bdd_nodes: u64,
    bdd_unique_hits: u64,
    bdd_apply_cache_hits: u64,
    /// Per-request feasibility-cache totals (recorded from the request's
    /// cache after analyze+answer, not folded from [`EngineStats`], so the
    /// answer-phase checks are included exactly once).
    engine_feasibility_hits: u64,
    engine_feasibility_misses: u64,
    /// Requests proxied per replica index (router mode only; rendered only
    /// when nonempty).
    router_routed: BTreeMap<usize, u64>,
    /// Planner routing decisions per chosen engine (`"engine": "auto"`).
    planner_decisions: BTreeMap<&'static str, u64>,
    /// Requests the planner rejected up front (estimate exceeded budget).
    planner_rejections: u64,
    /// Actual/predicted cost ratios of planner-routed runs.
    planner_ratio: [u64; RATIO_BUCKETS.len()],
    planner_ratio_total: u64,
    planner_ratio_sum: f64,
}

/// The service metrics registry.
#[derive(Default)]
pub struct Metrics {
    inner: Mutex<Inner>,
    queue_depth: AtomicI64,
    /// Connections currently open on the event loop (accept to close).
    http_open_connections: AtomicI64,
    /// Connections accepted since startup.
    http_accepted: AtomicU64,
    /// Connections torn down because the head or body did not arrive
    /// within the read deadline (slow-loris defense).
    http_read_timeouts: AtomicU64,
    /// Connections torn down because the client stopped draining its
    /// response within the write deadline.
    http_write_timeouts: AtomicU64,
    /// Event-loop wakeups (`epoll_wait` returns, including timeouts).
    http_loop_wakeups: AtomicU64,
    /// Connections answered `503` by the loop itself (job queue full or
    /// connection cap reached) before any worker was involved.
    http_conn_shed: AtomicU64,
    /// Shared compute pool whose occupancy/steal gauges are exported; bound
    /// once at service construction when parallel expansion is enabled.
    pool: Mutex<Option<ComputePool>>,
    /// Persistent-cache counters; bound once at service construction when
    /// `--cache-dir` is set.
    persist: Mutex<Option<Arc<PersistCounters>>>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records one completed request.
    pub fn record_request(&self, endpoint: &str, status: u16, elapsed: Duration) {
        let mut inner = self.inner.lock().expect("metrics mutex");
        *inner
            .requests
            .entry((endpoint.to_string(), status))
            .or_insert(0) += 1;
        inner
            .latency
            .entry(endpoint.to_string())
            .or_default()
            .observe(elapsed.as_secs_f64());
    }

    /// Records a cache hit or miss.
    pub fn record_cache(&self, hit: bool) {
        let mut inner = self.inner.lock().expect("metrics mutex");
        if hit {
            inner.cache_hits += 1;
        } else {
            inner.cache_misses += 1;
        }
    }

    /// Folds one completed batch into the `bayonet_batch_*` totals:
    /// `items` executed of which `item_errors` produced error frames,
    /// `compiles` distinct canonical sources compiled for the batch, and
    /// `source_reuse` items that ran off an already-compiled source.
    pub fn record_batch(&self, items: u64, item_errors: u64, compiles: u64, source_reuse: u64) {
        let mut inner = self.inner.lock().expect("metrics mutex");
        inner.batches += 1;
        inner.batch_items += items;
        inner.batch_item_errors += item_errors;
        inner.batch_compiles += compiles;
        inner.batch_source_reuse += source_reuse;
    }

    /// Folds one completed parameter sweep into the `bayonet_sweep_*`
    /// totals: `points` answered via sharing route `route`, of which
    /// `point_errors` produced error frames and `reused` were answered from
    /// shared work (a fully-shared 16-point sweep reuses 15 — the first
    /// point is charged with the shared exploration of `prefix_steps`
    /// global steps).
    pub fn record_sweep(
        &self,
        route: &str,
        points: u64,
        point_errors: u64,
        reused: u64,
        prefix_steps: u64,
    ) {
        let mut inner = self.inner.lock().expect("metrics mutex");
        *inner.sweeps.entry(route.to_string()).or_insert(0) += 1;
        inner.sweep_points += points;
        inner.sweep_point_errors += point_errors;
        inner.sweep_prefix_reuse += reused;
        inner.sweep_prefix_steps += prefix_steps;
    }

    /// Folds one exact-engine run into the cumulative totals.
    pub fn record_engine(&self, stats: &EngineStats) {
        let mut inner = self.inner.lock().expect("metrics mutex");
        inner.engine_steps += stats.steps;
        inner.engine_expansions += stats.expansions;
        inner.engine_merge_hits += stats.merge_hits;
        inner.engine_peak_configs = inner.engine_peak_configs.max(stats.peak_configs as u64);
        inner.engine_steals += stats.steals;
        inner.opt_orbit_states_merged += stats.orbit_merges;
        inner.bdd_nodes += stats.bdd_nodes;
        inner.bdd_unique_hits += stats.bdd_unique_hits;
        inner.bdd_apply_cache_hits += stats.bdd_apply_cache_hits;
    }

    /// Folds one model optimization into the `bayonet_opt_*` totals:
    /// `pass_runs` pass executions that eliminated `flips_eliminated`
    /// random sites and folded `guards_folded` constant guards.
    pub fn record_opt(&self, pass_runs: u64, flips_eliminated: u64, guards_folded: u64) {
        let mut inner = self.inner.lock().expect("metrics mutex");
        inner.opt_pass_runs += pass_runs;
        inner.opt_flips_eliminated += flips_eliminated;
        inner.opt_guards_folded += guards_folded;
    }

    /// Folds one request's feasibility-cache totals (hits, misses) into the
    /// cumulative counters. Called with the final counts of the per-request
    /// cache so analyze- and answer-phase checks are each counted once.
    pub fn record_feasibility(&self, hits: u64, misses: u64) {
        let mut inner = self.inner.lock().expect("metrics mutex");
        inner.engine_feasibility_hits += hits;
        inner.engine_feasibility_misses += misses;
    }

    /// Records one planner routing decision (`"engine": "auto"` resolved to
    /// `engine`).
    pub fn record_planner_decision(&self, engine: &'static str) {
        let mut inner = self.inner.lock().expect("metrics mutex");
        *inner.planner_decisions.entry(engine).or_insert(0) += 1;
    }

    /// Records one up-front planner rejection (estimate exceeded the
    /// deadline budget; no engine work was started).
    pub fn record_planner_rejection(&self) {
        self.inner.lock().expect("metrics mutex").planner_rejections += 1;
    }

    /// Records the actual/predicted cost ratio of one planner-routed run.
    pub fn record_planner_ratio(&self, ratio: f64) {
        let mut inner = self.inner.lock().expect("metrics mutex");
        for (i, bound) in RATIO_BUCKETS.iter().enumerate() {
            if ratio <= *bound {
                inner.planner_ratio[i] += 1;
            }
        }
        inner.planner_ratio_total += 1;
        inner.planner_ratio_sum += ratio;
    }

    /// Binds the shared compute pool whose occupancy and steal counters are
    /// exported as `bayonet_pool_*` gauges.
    pub fn bind_pool(&self, pool: ComputePool) {
        *self.pool.lock().expect("pool mutex") = Some(pool);
    }

    /// Binds the persistent-cache counters, exported as
    /// `bayonet_cache_persist_*`.
    pub fn bind_persist(&self, counters: Arc<PersistCounters>) {
        *self.persist.lock().expect("persist mutex") = Some(counters);
    }

    /// Updates the exported eviction count to the LRU's lifetime total.
    pub fn set_cache_evictions(&self, total: u64) {
        self.inner.lock().expect("metrics mutex").cache_evictions = total;
    }

    /// Adjusts the queue depth gauge (±1 from the accept loop / workers).
    pub fn queue_depth_add(&self, delta: i64) {
        self.queue_depth.fetch_add(delta, Ordering::Relaxed);
    }

    /// Records a connection accepted by the event loop.
    pub fn conn_opened(&self) {
        self.http_accepted.fetch_add(1, Ordering::Relaxed);
        self.http_open_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection fully torn down (fd closed).
    pub fn conn_closed(&self) {
        self.http_open_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current open-connection gauge value.
    pub fn open_connections(&self) -> i64 {
        self.http_open_connections.load(Ordering::Relaxed).max(0)
    }

    /// Records a connection killed by the per-connection read deadline.
    pub fn record_read_timeout(&self) {
        self.http_read_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a connection killed by the per-connection write deadline.
    pub fn record_write_timeout(&self) {
        self.http_write_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds `n` event-loop wakeups into the counter.
    pub fn record_wakeups(&self, n: u64) {
        self.http_loop_wakeups.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a connection the loop shed with `503` before dispatch.
    pub fn record_conn_shed(&self) {
        self.http_conn_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request proxied to replica `index` (router mode).
    pub fn record_routed(&self, index: usize) {
        let mut inner = self.inner.lock().expect("metrics mutex");
        *inner.router_routed.entry(index).or_insert(0) += 1;
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> i64 {
        self.queue_depth.load(Ordering::Relaxed).max(0)
    }

    /// Current cache hit/miss counters `(hits, misses)`.
    pub fn cache_counts(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("metrics mutex");
        (inner.cache_hits, inner.cache_misses)
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("metrics mutex");
        let mut out = String::new();

        out.push_str("# HELP bayonet_requests_total Completed HTTP requests.\n");
        out.push_str("# TYPE bayonet_requests_total counter\n");
        for ((endpoint, status), count) in &inner.requests {
            let _ = writeln!(
                out,
                "bayonet_requests_total{{endpoint=\"{endpoint}\",status=\"{status}\"}} {count}"
            );
        }

        out.push_str("# HELP bayonet_request_seconds Request latency.\n");
        out.push_str("# TYPE bayonet_request_seconds histogram\n");
        for (endpoint, hist) in &inner.latency {
            for (i, bound) in BUCKETS.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "bayonet_request_seconds_bucket{{endpoint=\"{endpoint}\",le=\"{bound}\"}} {}",
                    hist.counts[i]
                );
            }
            let _ = writeln!(
                out,
                "bayonet_request_seconds_bucket{{endpoint=\"{endpoint}\",le=\"+Inf\"}} {}",
                hist.total
            );
            let _ = writeln!(
                out,
                "bayonet_request_seconds_sum{{endpoint=\"{endpoint}\"}} {}",
                hist.sum
            );
            let _ = writeln!(
                out,
                "bayonet_request_seconds_count{{endpoint=\"{endpoint}\"}} {}",
                hist.total
            );
        }

        out.push_str("# HELP bayonet_queue_depth Jobs waiting in the worker queue.\n");
        out.push_str("# TYPE bayonet_queue_depth gauge\n");
        let _ = writeln!(out, "bayonet_queue_depth {}", self.queue_depth());

        out.push_str(
            "# HELP bayonet_http_open_connections Connections currently open on the \
             event loop.\n",
        );
        out.push_str("# TYPE bayonet_http_open_connections gauge\n");
        let _ = writeln!(
            out,
            "bayonet_http_open_connections {}",
            self.open_connections()
        );
        out.push_str("# HELP bayonet_http_accepted_total Connections accepted.\n");
        out.push_str("# TYPE bayonet_http_accepted_total counter\n");
        let _ = writeln!(
            out,
            "bayonet_http_accepted_total {}",
            self.http_accepted.load(Ordering::Relaxed)
        );
        out.push_str(
            "# HELP bayonet_http_read_timeouts_total Connections killed by the \
             per-connection read deadline (slow-loris defense).\n",
        );
        out.push_str("# TYPE bayonet_http_read_timeouts_total counter\n");
        let _ = writeln!(
            out,
            "bayonet_http_read_timeouts_total {}",
            self.http_read_timeouts.load(Ordering::Relaxed)
        );
        out.push_str(
            "# HELP bayonet_http_write_timeouts_total Connections killed by the \
             per-connection write deadline.\n",
        );
        out.push_str("# TYPE bayonet_http_write_timeouts_total counter\n");
        let _ = writeln!(
            out,
            "bayonet_http_write_timeouts_total {}",
            self.http_write_timeouts.load(Ordering::Relaxed)
        );
        out.push_str("# HELP bayonet_http_loop_wakeups_total Event-loop wakeups.\n");
        out.push_str("# TYPE bayonet_http_loop_wakeups_total counter\n");
        let _ = writeln!(
            out,
            "bayonet_http_loop_wakeups_total {}",
            self.http_loop_wakeups.load(Ordering::Relaxed)
        );
        out.push_str(
            "# HELP bayonet_http_conn_shed_total Connections answered 503 by the \
             loop (queue full or connection cap).\n",
        );
        out.push_str("# TYPE bayonet_http_conn_shed_total counter\n");
        let _ = writeln!(
            out,
            "bayonet_http_conn_shed_total {}",
            self.http_conn_shed.load(Ordering::Relaxed)
        );

        if !inner.router_routed.is_empty() {
            out.push_str("# HELP bayonet_router_requests_total Requests proxied per replica.\n");
            out.push_str("# TYPE bayonet_router_requests_total counter\n");
            for (replica, count) in &inner.router_routed {
                let _ = writeln!(
                    out,
                    "bayonet_router_requests_total{{replica=\"{replica}\"}} {count}"
                );
            }
        }

        out.push_str("# HELP bayonet_cache_hits_total Result cache hits.\n");
        out.push_str("# TYPE bayonet_cache_hits_total counter\n");
        let _ = writeln!(out, "bayonet_cache_hits_total {}", inner.cache_hits);
        out.push_str("# HELP bayonet_cache_misses_total Result cache misses.\n");
        out.push_str("# TYPE bayonet_cache_misses_total counter\n");
        let _ = writeln!(out, "bayonet_cache_misses_total {}", inner.cache_misses);
        out.push_str("# HELP bayonet_cache_evictions_total Entries evicted by LRU pressure.\n");
        out.push_str("# TYPE bayonet_cache_evictions_total counter\n");
        let _ = writeln!(
            out,
            "bayonet_cache_evictions_total {}",
            inner.cache_evictions
        );

        if let Some(p) = self.persist.lock().expect("persist mutex").as_ref() {
            out.push_str(
                "# HELP bayonet_cache_persist_writes_total Records durably appended \
                 to the segment (post-fsync).\n",
            );
            out.push_str("# TYPE bayonet_cache_persist_writes_total counter\n");
            let _ = writeln!(
                out,
                "bayonet_cache_persist_writes_total {}",
                p.writes.load(Ordering::Relaxed)
            );
            out.push_str(
                "# HELP bayonet_cache_persist_load_ok_total Records warm-loaded at startup.\n",
            );
            out.push_str("# TYPE bayonet_cache_persist_load_ok_total counter\n");
            let _ = writeln!(
                out,
                "bayonet_cache_persist_load_ok_total {}",
                p.load_ok.load(Ordering::Relaxed)
            );
            out.push_str(
                "# HELP bayonet_cache_persist_load_corrupt_total Records skipped at \
                 startup (CRC mismatch, torn tail, bad header).\n",
            );
            out.push_str("# TYPE bayonet_cache_persist_load_corrupt_total counter\n");
            let _ = writeln!(
                out,
                "bayonet_cache_persist_load_corrupt_total {}",
                p.load_corrupt.load(Ordering::Relaxed)
            );
            out.push_str(
                "# HELP bayonet_cache_persist_compactions_total Segment rewrites \
                 triggered by the size bound.\n",
            );
            out.push_str("# TYPE bayonet_cache_persist_compactions_total counter\n");
            let _ = writeln!(
                out,
                "bayonet_cache_persist_compactions_total {}",
                p.compactions.load(Ordering::Relaxed)
            );
            out.push_str("# HELP bayonet_cache_persist_size_bytes Segment file size.\n");
            out.push_str("# TYPE bayonet_cache_persist_size_bytes gauge\n");
            let _ = writeln!(
                out,
                "bayonet_cache_persist_size_bytes {}",
                p.size_bytes.load(Ordering::Relaxed)
            );
        }

        out.push_str("# HELP bayonet_batch_requests_total Batches handled by /v1/batch.\n");
        out.push_str("# TYPE bayonet_batch_requests_total counter\n");
        let _ = writeln!(out, "bayonet_batch_requests_total {}", inner.batches);
        out.push_str("# HELP bayonet_batch_items_total Batch items executed.\n");
        out.push_str("# TYPE bayonet_batch_items_total counter\n");
        let _ = writeln!(out, "bayonet_batch_items_total {}", inner.batch_items);
        out.push_str(
            "# HELP bayonet_batch_item_errors_total Batch items that produced an error frame.\n",
        );
        out.push_str("# TYPE bayonet_batch_item_errors_total counter\n");
        let _ = writeln!(
            out,
            "bayonet_batch_item_errors_total {}",
            inner.batch_item_errors
        );
        out.push_str(
            "# HELP bayonet_batch_compiles_total Distinct canonical sources \
             parsed+checked+compiled for batches.\n",
        );
        out.push_str("# TYPE bayonet_batch_compiles_total counter\n");
        let _ = writeln!(out, "bayonet_batch_compiles_total {}", inner.batch_compiles);
        out.push_str(
            "# HELP bayonet_batch_source_reuse_total Batch items that reused a \
             batch-local compiled source.\n",
        );
        out.push_str("# TYPE bayonet_batch_source_reuse_total counter\n");
        let _ = writeln!(
            out,
            "bayonet_batch_source_reuse_total {}",
            inner.batch_source_reuse
        );

        out.push_str(
            "# HELP bayonet_sweep_requests_total Sweeps handled by /v1/sweep, per \
             sharing route.\n",
        );
        out.push_str("# TYPE bayonet_sweep_requests_total counter\n");
        for (route, count) in &inner.sweeps {
            let _ = writeln!(
                out,
                "bayonet_sweep_requests_total{{route=\"{route}\"}} {count}"
            );
        }
        out.push_str("# HELP bayonet_sweep_points_total Sweep grid points answered.\n");
        out.push_str("# TYPE bayonet_sweep_points_total counter\n");
        let _ = writeln!(out, "bayonet_sweep_points_total {}", inner.sweep_points);
        out.push_str(
            "# HELP bayonet_sweep_point_errors_total Sweep points that produced an \
             error frame.\n",
        );
        out.push_str("# TYPE bayonet_sweep_point_errors_total counter\n");
        let _ = writeln!(
            out,
            "bayonet_sweep_point_errors_total {}",
            inner.sweep_point_errors
        );
        out.push_str(
            "# HELP bayonet_sweep_prefix_reuse_total Sweep points answered by reusing \
             shared exploration instead of a full independent run.\n",
        );
        out.push_str("# TYPE bayonet_sweep_prefix_reuse_total counter\n");
        let _ = writeln!(
            out,
            "bayonet_sweep_prefix_reuse_total {}",
            inner.sweep_prefix_reuse
        );
        out.push_str(
            "# HELP bayonet_sweep_prefix_steps_total Global steps of shared (run-once) \
             sweep exploration.\n",
        );
        out.push_str("# TYPE bayonet_sweep_prefix_steps_total counter\n");
        let _ = writeln!(
            out,
            "bayonet_sweep_prefix_steps_total {}",
            inner.sweep_prefix_steps
        );

        out.push_str("# HELP bayonet_engine_steps_total Exact-engine global steps.\n");
        out.push_str("# TYPE bayonet_engine_steps_total counter\n");
        let _ = writeln!(out, "bayonet_engine_steps_total {}", inner.engine_steps);
        out.push_str("# HELP bayonet_engine_expansions_total Exact-engine expansions.\n");
        out.push_str("# TYPE bayonet_engine_expansions_total counter\n");
        let _ = writeln!(
            out,
            "bayonet_engine_expansions_total {}",
            inner.engine_expansions
        );
        out.push_str("# HELP bayonet_engine_merge_hits_total Configuration merges.\n");
        out.push_str("# TYPE bayonet_engine_merge_hits_total counter\n");
        let _ = writeln!(
            out,
            "bayonet_engine_merge_hits_total {}",
            inner.engine_merge_hits
        );
        out.push_str("# HELP bayonet_engine_peak_configs Largest frontier seen.\n");
        out.push_str("# TYPE bayonet_engine_peak_configs gauge\n");
        let _ = writeln!(
            out,
            "bayonet_engine_peak_configs {}",
            inner.engine_peak_configs
        );
        out.push_str(
            "# HELP bayonet_engine_steals_total Expansion tasks stolen across worker deques.\n",
        );
        out.push_str("# TYPE bayonet_engine_steals_total counter\n");
        let _ = writeln!(out, "bayonet_engine_steals_total {}", inner.engine_steals);
        out.push_str("# HELP bayonet_opt_pass_runs_total Model-optimization pass executions.\n");
        out.push_str("# TYPE bayonet_opt_pass_runs_total counter\n");
        let _ = writeln!(out, "bayonet_opt_pass_runs_total {}", inner.opt_pass_runs);
        out.push_str(
            "# HELP bayonet_opt_flips_eliminated_total Random sites removed by \
             dead-flip elimination.\n",
        );
        out.push_str("# TYPE bayonet_opt_flips_eliminated_total counter\n");
        let _ = writeln!(
            out,
            "bayonet_opt_flips_eliminated_total {}",
            inner.opt_flips_eliminated
        );
        out.push_str(
            "# HELP bayonet_opt_guards_folded_total Constant guards folded by the \
             pass pipeline.\n",
        );
        out.push_str("# TYPE bayonet_opt_guards_folded_total counter\n");
        let _ = writeln!(
            out,
            "bayonet_opt_guards_folded_total {}",
            inner.opt_guards_folded
        );
        out.push_str(
            "# HELP bayonet_opt_orbit_states_merged_total Frontier configurations \
             replaced by their symmetry-orbit representative.\n",
        );
        out.push_str("# TYPE bayonet_opt_orbit_states_merged_total counter\n");
        let _ = writeln!(
            out,
            "bayonet_opt_orbit_states_merged_total {}",
            inner.opt_orbit_states_merged
        );
        out.push_str("# HELP bayonet_bdd_nodes_total ADD store decision nodes allocated.\n");
        out.push_str("# TYPE bayonet_bdd_nodes_total counter\n");
        let _ = writeln!(out, "bayonet_bdd_nodes_total {}", inner.bdd_nodes);
        out.push_str(
            "# HELP bayonet_bdd_unique_hits_total ADD unique-table hits \
             (structural merges).\n",
        );
        out.push_str("# TYPE bayonet_bdd_unique_hits_total counter\n");
        let _ = writeln!(
            out,
            "bayonet_bdd_unique_hits_total {}",
            inner.bdd_unique_hits
        );
        out.push_str(
            "# HELP bayonet_bdd_apply_cache_hits_total ADD apply/weight memo \
             cache hits.\n",
        );
        out.push_str("# TYPE bayonet_bdd_apply_cache_hits_total counter\n");
        let _ = writeln!(
            out,
            "bayonet_bdd_apply_cache_hits_total {}",
            inner.bdd_apply_cache_hits
        );
        out.push_str(
            "# HELP bayonet_engine_feasibility_hits_total Fourier–Motzkin feasibility \
             checks answered from the per-run guard cache.\n",
        );
        out.push_str("# TYPE bayonet_engine_feasibility_hits_total counter\n");
        let _ = writeln!(
            out,
            "bayonet_engine_feasibility_hits_total {}",
            inner.engine_feasibility_hits
        );
        out.push_str(
            "# HELP bayonet_engine_feasibility_misses_total Feasibility checks that ran \
             the full elimination.\n",
        );
        out.push_str("# TYPE bayonet_engine_feasibility_misses_total counter\n");
        let _ = writeln!(
            out,
            "bayonet_engine_feasibility_misses_total {}",
            inner.engine_feasibility_misses
        );

        out.push_str(
            "# HELP bayonet_planner_decisions_total Auto-routing decisions per \
             chosen engine.\n",
        );
        out.push_str("# TYPE bayonet_planner_decisions_total counter\n");
        for (engine, count) in &inner.planner_decisions {
            let _ = writeln!(
                out,
                "bayonet_planner_decisions_total{{engine=\"{engine}\"}} {count}"
            );
        }
        out.push_str(
            "# HELP bayonet_planner_rejections_total Requests rejected up front \
             because the cost estimate exceeded the deadline budget.\n",
        );
        out.push_str("# TYPE bayonet_planner_rejections_total counter\n");
        let _ = writeln!(
            out,
            "bayonet_planner_rejections_total {}",
            inner.planner_rejections
        );
        out.push_str(
            "# HELP bayonet_planner_cost_ratio Actual/predicted wall-clock ratio of \
             planner-routed runs (1.0 = perfect prediction).\n",
        );
        out.push_str("# TYPE bayonet_planner_cost_ratio histogram\n");
        for (i, bound) in RATIO_BUCKETS.iter().enumerate() {
            let _ = writeln!(
                out,
                "bayonet_planner_cost_ratio_bucket{{le=\"{bound}\"}} {}",
                inner.planner_ratio[i]
            );
        }
        let _ = writeln!(
            out,
            "bayonet_planner_cost_ratio_bucket{{le=\"+Inf\"}} {}",
            inner.planner_ratio_total
        );
        let _ = writeln!(
            out,
            "bayonet_planner_cost_ratio_sum {}",
            inner.planner_ratio_sum
        );
        let _ = writeln!(
            out,
            "bayonet_planner_cost_ratio_count {}",
            inner.planner_ratio_total
        );

        if let Some(pool) = self.pool.lock().expect("pool mutex").as_ref() {
            let stats = pool.stats();
            out.push_str("# HELP bayonet_pool_workers_total Compute-pool slots.\n");
            out.push_str("# TYPE bayonet_pool_workers_total gauge\n");
            let _ = writeln!(out, "bayonet_pool_workers_total {}", stats.capacity);
            out.push_str("# HELP bayonet_pool_workers_busy Compute-pool slots currently leased.\n");
            out.push_str("# TYPE bayonet_pool_workers_busy gauge\n");
            let _ = writeln!(out, "bayonet_pool_workers_busy {}", stats.busy);
            out.push_str("# HELP bayonet_pool_steals_total Tasks stolen via the shared pool.\n");
            out.push_str("# TYPE bayonet_pool_steals_total counter\n");
            let _ = writeln!(out, "bayonet_pool_steals_total {}", stats.steals);
            out.push_str("# HELP bayonet_pool_leases_total Worker leases granted.\n");
            out.push_str("# TYPE bayonet_pool_leases_total counter\n");
            let _ = writeln!(out, "bayonet_pool_leases_total {}", stats.leases);
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_prometheus_text() {
        let m = Metrics::new();
        m.record_request("/v1/run", 200, Duration::from_millis(3));
        m.record_request("/v1/run", 200, Duration::from_millis(700));
        m.record_request("/healthz", 200, Duration::from_micros(50));
        m.record_cache(true);
        m.record_cache(false);
        m.set_cache_evictions(6);
        let persist = Arc::new(PersistCounters::default());
        persist.writes.store(4, Ordering::Relaxed);
        persist.load_ok.store(3, Ordering::Relaxed);
        persist.load_corrupt.store(2, Ordering::Relaxed);
        persist.compactions.store(1, Ordering::Relaxed);
        persist.size_bytes.store(512, Ordering::Relaxed);
        m.bind_persist(persist);
        m.queue_depth_add(2);
        m.record_batch(10, 2, 1, 9);
        m.record_sweep("prefix", 16, 1, 15, 7);
        m.record_sweep("symbolic", 4, 0, 3, 2);
        m.record_engine(&EngineStats {
            steps: 10,
            expansions: 100,
            peak_configs: 7,
            merge_hits: 3,
            terminal_configs: 2,
            steals: 4,
            orbit_merges: 12,
            feasibility_hits: 0,
            feasibility_misses: 0,
            bdd_nodes: 21,
            bdd_unique_hits: 13,
            bdd_apply_cache_hits: 8,
        });
        m.record_opt(3, 2, 1);
        m.record_feasibility(11, 5);
        m.record_planner_decision("bdd");
        m.record_planner_decision("bdd");
        m.record_planner_decision("smc");
        m.record_planner_rejection();
        m.record_planner_ratio(0.4);
        m.record_planner_ratio(3.0);
        let pool = ComputePool::new(8);
        let lease = pool.lease(3);
        pool.add_steals(5);
        m.bind_pool(pool);

        let text = m.render();
        assert!(text.contains("bayonet_requests_total{endpoint=\"/v1/run\",status=\"200\"} 2"));
        assert!(text.contains("bayonet_request_seconds_bucket{endpoint=\"/v1/run\",le=\"+Inf\"} 2"));
        assert!(text.contains("bayonet_request_seconds_count{endpoint=\"/healthz\"} 1"));
        assert!(text.contains("bayonet_queue_depth 2"));
        assert!(text.contains("bayonet_cache_hits_total 1"));
        assert!(text.contains("bayonet_cache_misses_total 1"));
        assert!(text.contains("bayonet_cache_evictions_total 6"));
        assert!(text.contains("bayonet_cache_persist_writes_total 4"));
        assert!(text.contains("bayonet_cache_persist_load_ok_total 3"));
        assert!(text.contains("bayonet_cache_persist_load_corrupt_total 2"));
        assert!(text.contains("bayonet_cache_persist_compactions_total 1"));
        assert!(text.contains("bayonet_cache_persist_size_bytes 512"));
        assert!(text.contains("bayonet_batch_requests_total 1"));
        assert!(text.contains("bayonet_batch_items_total 10"));
        assert!(text.contains("bayonet_batch_item_errors_total 2"));
        assert!(text.contains("bayonet_batch_compiles_total 1"));
        assert!(text.contains("bayonet_batch_source_reuse_total 9"));
        assert!(text.contains("bayonet_sweep_requests_total{route=\"prefix\"} 1"));
        assert!(text.contains("bayonet_sweep_requests_total{route=\"symbolic\"} 1"));
        assert!(text.contains("bayonet_sweep_points_total 20"));
        assert!(text.contains("bayonet_sweep_point_errors_total 1"));
        assert!(text.contains("bayonet_sweep_prefix_reuse_total 18"));
        assert!(text.contains("bayonet_sweep_prefix_steps_total 9"));
        assert!(text.contains("bayonet_engine_steps_total 10"));
        assert!(text.contains("bayonet_engine_peak_configs 7"));
        assert!(text.contains("bayonet_engine_steals_total 4"));
        assert!(text.contains("bayonet_engine_feasibility_hits_total 11"));
        assert!(text.contains("bayonet_engine_feasibility_misses_total 5"));
        assert!(text.contains("bayonet_opt_pass_runs_total 3"));
        assert!(text.contains("bayonet_opt_flips_eliminated_total 2"));
        assert!(text.contains("bayonet_opt_guards_folded_total 1"));
        assert!(text.contains("bayonet_opt_orbit_states_merged_total 12"));
        assert!(text.contains("bayonet_bdd_nodes_total 21"));
        assert!(text.contains("bayonet_bdd_unique_hits_total 13"));
        assert!(text.contains("bayonet_bdd_apply_cache_hits_total 8"));
        assert!(text.contains("bayonet_planner_decisions_total{engine=\"bdd\"} 2"));
        assert!(text.contains("bayonet_planner_decisions_total{engine=\"smc\"} 1"));
        assert!(text.contains("bayonet_planner_rejections_total 1"));
        assert!(text.contains("bayonet_planner_cost_ratio_bucket{le=\"0.5\"} 1"));
        assert!(text.contains("bayonet_planner_cost_ratio_bucket{le=\"4\"} 2"));
        assert!(text.contains("bayonet_planner_cost_ratio_count 2"));
        assert!(text.contains("bayonet_pool_workers_total 8"));
        assert!(text.contains("bayonet_pool_workers_busy 3"));
        assert!(text.contains("bayonet_pool_steals_total 5"));
        assert!(text.contains("bayonet_pool_leases_total 1"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("metric line");
            assert!(value.parse::<f64>().is_ok(), "bad metric line: {line}");
        }
        drop(lease);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut h = Histogram::default();
        h.observe(0.0005);
        h.observe(0.02);
        h.observe(100.0);
        assert_eq!(h.counts[0], 1); // <= 1ms
        assert_eq!(h.counts[3], 2); // <= 50ms
        assert_eq!(h.counts[7], 2); // <= 5s
        assert_eq!(h.total, 3);
    }
}
