//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the two crossbeam facilities it uses:
//!
//! * [`thread::scope`] — scoped threads, implemented as a thin adapter over
//!   `std::thread::scope` (stable since Rust 1.63) that preserves the
//!   crossbeam calling convention (`scope(|s| ...)` returning a `Result`,
//!   spawn closures receiving `&Scope`).
//! * [`channel`] — a bounded MPMC channel (`bounded`, `try_send`, blocking
//!   `recv`, `len`) built on `Mutex` + `Condvar`, sufficient for a
//!   fixed-size worker pool fed by an accept loop.

#![forbid(unsafe_code)]

/// Scoped threads (crossbeam-utils API subset).
pub mod thread {
    use std::any::Any;

    /// Result of joining a thread: `Err` carries the panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle passed to [`scope`] closures; spawned threads may
    /// borrow from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope itself so
        /// nested spawns are possible, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Creates a scope for spawning threads that borrow from the caller's
    /// stack. Unlike `std::thread::scope`, unjoined panics surface when the
    /// caller joins, not as an automatic re-panic — matching crossbeam's
    /// contract closely enough for this workspace (which always joins).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Bounded MPMC channels (crossbeam-channel API subset).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        not_empty: Condvar,
        capacity: usize,
        senders: AtomicUsize,
    }

    /// The sending half of a bounded channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a bounded channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error from [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the message is handed back.
        Full(T),
        /// Every receiver is gone; the message is handed back.
        Disconnected(T),
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    /// Error from [`Receiver::recv`]: the channel is empty and every sender
    /// is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates a bounded channel holding at most `capacity` queued messages.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::with_capacity(capacity)),
            not_empty: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake all blocked receivers so they can
                // observe disconnection.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Sender<T> {
        /// Attempts to enqueue without blocking.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] at capacity, [`TrySendError::Disconnected`]
        /// when no receiver remains (approximated: receivers are tracked by
        /// `Arc` count).
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            if queue.len() >= self.shared.capacity {
                return Err(TrySendError::Full(msg));
            }
            queue.push_back(msg);
            drop(queue);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of queued messages (racy snapshot, like crossbeam's).
        pub fn len(&self) -> usize {
            self.shared.queue.lock().expect("channel poisoned").len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when the channel is empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.not_empty.wait(queue).expect("channel poisoned");
            }
        }

        /// Number of queued messages (racy snapshot).
        pub fn len(&self) -> usize {
            self.shared.queue.lock().expect("channel poisoned").len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, TrySendError};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1, 2, 3, 4];
        let sums: Vec<i32> = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn bounded_channel_capacity_and_order() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn recv_unblocks_on_disconnect() {
        let (tx, rx) = bounded::<i32>(1);
        let t = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(tx);
        assert!(t.join().unwrap().is_err());
    }

    #[test]
    fn mpmc_distributes_all_messages() {
        let (tx, rx) = bounded(64);
        for i in 0..64 {
            tx.try_send(i).unwrap();
        }
        drop(tx);
        let mut workers = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            workers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        let mut all: Vec<i32> = workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
    }
}
