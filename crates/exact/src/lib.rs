//! Exact probabilistic inference for Bayonet networks.
//!
//! This crate is the reproduction's stand-in for PSI, the exact symbolic
//! solver the paper compiles to: it computes the **exact posterior** over
//! terminal network configurations by exhaustive weighted exploration of
//! the global transition system (with configuration merging), handles
//! `observe` conditioning by renormalizing with the surviving mass `Z`, and
//! supports **symbolic configuration parameters** by case-splitting on the
//! sign of linear expressions — producing the piecewise results of paper
//! Figure 3 and enabling parameter synthesis (§2.3).
//!
//! # Examples
//!
//! ```
//! use bayonet_lang::parse;
//! use bayonet_net::{compile, scheduler_for};
//! use bayonet_exact::{analyze, answer, ExactOptions};
//! use bayonet_num::Rat;
//!
//! let model = compile(&parse(r#"
//!     packet_fields { dst }
//!     topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
//!     programs { A -> send, B -> recv }
//!     init { packet -> (A, pt1); }
//!     query probability(got@B == 1);
//!     def send(pkt, pt) { if flip(1/3) { fwd(1); } else { drop; } }
//!     def recv(pkt, pt) state got(0) { got = 1; drop; }
//! "#)?)?;
//! let analysis = analyze(&model, &*scheduler_for(&model), &ExactOptions::default())?;
//! let result = answer(&model, &analysis, &model.queries[0], true)?;
//! assert_eq!(*result.rat(), Rat::ratio(1, 3));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bdd_engine;
mod engine;
mod enumerate;
pub mod planner;
mod pool;
mod query;
mod sweep;
mod synthesize;

pub use bayonet_symbolic::FeasibilityCache;
pub use engine::{analyze, Analysis, EngineKind, EngineStats, ExactError, ExactOptions};
pub use enumerate::{enumerate_eval, enumerate_eval_cached, Branch, ReplayDriver};
pub use planner::{plan_model, Plan, PlanDecision, PlanEngine, PlanSignals, PlannerConfig};
pub use pool::{ComputePool, PoolLease, PoolStats};
pub use query::{
    answer, answer_cached, value_distribution, CellAnswer, QueryResult, MAX_CELL_ATOMS,
};
pub use sweep::{sweep, SweepPointResult, SweepResult, SweepRoute};
pub use synthesize::{synthesize_result, Objective, Synthesis, SynthesisError, SynthesisOptions};
