//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the two crossbeam facilities it uses:
//!
//! * [`thread::scope`] — scoped threads, implemented as a thin adapter over
//!   `std::thread::scope` (stable since Rust 1.63) that preserves the
//!   crossbeam calling convention (`scope(|s| ...)` returning a `Result`,
//!   spawn closures receiving `&Scope`).
//! * [`channel`] — a bounded MPMC channel (`bounded`, `try_send`, blocking
//!   `recv`, `len`) built on `Mutex` + `Condvar`, sufficient for a
//!   fixed-size worker pool fed by an accept loop.

#![forbid(unsafe_code)]

/// Scoped threads (crossbeam-utils API subset).
pub mod thread {
    use std::any::Any;

    /// Result of joining a thread: `Err` carries the panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle passed to [`scope`] closures; spawned threads may
    /// borrow from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope itself so
        /// nested spawns are possible, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Creates a scope for spawning threads that borrow from the caller's
    /// stack. Unlike `std::thread::scope`, unjoined panics surface when the
    /// caller joins, not as an automatic re-panic — matching crossbeam's
    /// contract closely enough for this workspace (which always joins).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Bounded MPMC channels (crossbeam-channel API subset).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        not_empty: Condvar,
        capacity: usize,
        senders: AtomicUsize,
    }

    /// The sending half of a bounded channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a bounded channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error from [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the message is handed back.
        Full(T),
        /// Every receiver is gone; the message is handed back.
        Disconnected(T),
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    /// Error from [`Receiver::recv`]: the channel is empty and every sender
    /// is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates a bounded channel holding at most `capacity` queued messages.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::with_capacity(capacity)),
            not_empty: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake all blocked receivers so they can
                // observe disconnection.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Sender<T> {
        /// Attempts to enqueue without blocking.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] at capacity, [`TrySendError::Disconnected`]
        /// when no receiver remains (approximated: receivers are tracked by
        /// `Arc` count).
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            if queue.len() >= self.shared.capacity {
                return Err(TrySendError::Full(msg));
            }
            queue.push_back(msg);
            drop(queue);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of queued messages (racy snapshot, like crossbeam's).
        pub fn len(&self) -> usize {
            self.shared.queue.lock().expect("channel poisoned").len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when the channel is empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.not_empty.wait(queue).expect("channel poisoned");
            }
        }

        /// Number of queued messages (racy snapshot).
        pub fn len(&self) -> usize {
            self.shared.queue.lock().expect("channel poisoned").len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

/// Work-stealing deques (crossbeam-deque API subset).
///
/// A [`deque::Worker`] is an owner-side queue; [`deque::Stealer`] handles
/// take work from the opposite end; a [`deque::Injector`] is a shared
/// global queue every worker can steal from. The real crate is lock-free;
/// this stand-in uses a mutex per queue, which is fine when each task
/// carries substantial work (as the exact engine's expansion chunks do).
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and may be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// Extracts the stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// The owner side of a work-stealing deque (FIFO flavour).
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    /// A handle that steals from the back of a [`Worker`]'s deque.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Default for Worker<T> {
        fn default() -> Self {
            Worker::new_fifo()
        }
    }

    impl<T> Worker<T> {
        /// Creates an empty FIFO worker queue.
        pub fn new_fifo() -> Worker<T> {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.inner.lock().expect("deque poisoned").push_back(task);
        }

        /// Pops the next task from the owner's end (front, FIFO).
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("deque poisoned").pop_front()
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("deque poisoned").is_empty()
        }

        /// Creates a [`Stealer`] for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the victim's back end.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().expect("deque poisoned").pop_back() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    /// A shared global queue of tasks, stealable by every worker.
    pub struct Injector<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Injector<T> {
            Injector {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the global queue.
        pub fn push(&self, task: T) {
            self.inner
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        /// Steals one task from the global queue.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().expect("injector poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the global queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("injector poisoned").is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.inner.lock().expect("injector poisoned").len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, TrySendError};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1, 2, 3, 4];
        let sums: Vec<i32> = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn bounded_channel_capacity_and_order() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn recv_unblocks_on_disconnect() {
        let (tx, rx) = bounded::<i32>(1);
        let t = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(tx);
        assert!(t.join().unwrap().is_err());
    }

    #[test]
    fn deque_owner_pops_fifo_and_stealers_take_the_back() {
        use super::deque::{Injector, Steal, Worker};
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        w.push(3);
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(3)); // opposite end
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);

        let inj = Injector::new();
        inj.push(10);
        inj.push(11);
        assert_eq!(inj.len(), 2);
        assert_eq!(inj.steal(), Steal::Success(10));
        assert_eq!(inj.steal().success(), Some(11));
        assert!(inj.is_empty());
    }

    #[test]
    fn mpmc_distributes_all_messages() {
        let (tx, rx) = bounded(64);
        for i in 0..64 {
            tx.try_send(i).unwrap();
        }
        drop(tx);
        let mut workers = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            workers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        let mut all: Vec<i32> = workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
    }
}
