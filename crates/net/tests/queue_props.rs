//! Model-based property tests of the capacity-bounded queue against a
//! reference implementation (an unbounded `VecDeque` plus explicit capacity
//! checks).

use std::collections::VecDeque;

use bayonet_net::{Packet, PktQueue, Val};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    PushBack(i64),
    PushFront(i64),
    PopFront,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..100).prop_map(Op::PushBack),
        (0i64..100).prop_map(Op::PushFront),
        Just(Op::PopFront),
    ]
}

fn tagged(tag: i64) -> (Packet, u32) {
    let mut p = Packet::fresh(1);
    p.set_field(0, Val::int(tag));
    (p, 1)
}

proptest! {
    #[test]
    fn queue_matches_reference_model(
        capacity in 0usize..5,
        ops in proptest::collection::vec(arb_op(), 0..40)
    ) {
        let mut queue = PktQueue::new(capacity);
        let mut model: VecDeque<i64> = VecDeque::new();
        for op in ops {
            match op {
                Op::PushBack(tag) => {
                    let accepted = queue.push_back(tagged(tag));
                    prop_assert_eq!(accepted, model.len() < capacity);
                    if accepted {
                        model.push_back(tag);
                    }
                }
                Op::PushFront(tag) => {
                    let accepted = queue.push_front(tagged(tag));
                    prop_assert_eq!(accepted, model.len() < capacity);
                    if accepted {
                        model.push_front(tag);
                    }
                }
                Op::PopFront => {
                    let got = queue.pop_front().map(|(p, _)| match p.field(0) {
                        Val::Rat(r) => r.to_i64().unwrap(),
                        _ => unreachable!(),
                    });
                    prop_assert_eq!(got, model.pop_front());
                }
            }
            // Invariants after every operation.
            prop_assert_eq!(queue.len(), model.len());
            prop_assert!(queue.len() <= capacity);
            prop_assert_eq!(queue.is_empty(), model.is_empty());
            prop_assert_eq!(queue.is_full(), model.len() >= capacity);
            let contents: Vec<i64> = queue
                .iter()
                .map(|(p, _)| match p.field(0) {
                    Val::Rat(r) => r.to_i64().unwrap(),
                    _ => unreachable!(),
                })
                .collect();
            let expected: Vec<i64> = model.iter().copied().collect();
            prop_assert_eq!(contents, expected);
        }
    }
}
