//! Approximate engines validated against exact values on paper scenarios.

use bayonet_approx::{rejection, smc, ApproxOptions};
use bayonet_lang::parse;
use bayonet_net::{compile, scheduler_for, Model};

fn model(src: &str) -> Model {
    compile(&parse(src).unwrap()).unwrap()
}

fn opts(particles: usize, seed: u64) -> ApproxOptions {
    ApproxOptions {
        particles,
        seed,
        ..Default::default()
    }
}

const RELIABILITY_SRC: &str = r#"
    packet_fields { dst }
    topology {
        nodes { H0, S0, S1, S2, S3, H1 }
        links {
            (H0, pt1) <-> (S0, pt1),
            (S0, pt2) <-> (S1, pt1),
            (S0, pt3) <-> (S2, pt1),
            (S1, pt2) <-> (S3, pt1),
            (S2, pt2) <-> (S3, pt2),
            (S3, pt3) <-> (H1, pt1)
        }
    }
    programs { H0 -> h0, S0 -> s0, S1 -> s1, S2 -> s2, S3 -> s3, H1 -> h1 }
    init { packet -> (H0, pt1); }
    query probability(arrived@H1);

    def h0(pkt, pt) { fwd(1); }
    def s0(pkt, pt) { if flip(1/2) { fwd(2); } else { fwd(3); } }
    def s1(pkt, pt) { fwd(2); }
    def s2(pkt, pt) state failing(2) {
        if failing == 2 { failing = flip(1/10); }
        if failing == 1 { drop; } else { fwd(2); }
    }
    def s3(pkt, pt) { fwd(3); }
    def h1(pkt, pt) state arrived(0) { arrived = 1; drop; }
"#;

#[test]
fn smc_matches_exact_reliability() {
    // p_fail = 1/10 here so the failure mode actually shows up in a
    // modest sample: exact reliability = 1 - 1/2 * 1/10 = 0.95.
    let m = model(RELIABILITY_SRC);
    let est = smc(&m, &*scheduler_for(&m), &m.queries[0], &opts(3000, 7)).unwrap();
    assert!((est.value - 0.95).abs() < 0.02, "estimate {est}");
    assert_eq!(est.z_estimate, 1.0); // no observations
}

#[test]
fn rejection_matches_exact_reliability() {
    let m = model(RELIABILITY_SRC);
    let est = rejection(&m, &*scheduler_for(&m), &m.queries[0], &opts(3000, 11)).unwrap();
    assert!((est.value - 0.95).abs() < 0.02, "estimate {est}");
}

#[test]
fn smc_expectation_matches_gossip_k4() {
    // E[#infected] = 94/27 ≈ 3.4815 (paper §5.3, Table 1 approx ≈ 3.476).
    let mut links = Vec::new();
    for i in 0..4u32 {
        for j in (i + 1)..4u32 {
            links.push(format!("(S{i}, pt{j}) <-> (S{j}, pt{})", i + 1));
        }
    }
    let src = format!(
        r#"
        packet_fields {{ dst }}
        topology {{ nodes {{ S0, S1, S2, S3 }} links {{ {links} }} }}
        programs {{ S0 -> seed, S1 -> gossip, S2 -> gossip, S3 -> gossip }}
        init {{ packet -> (S0, pt1); }}
        query expectation(infected@S0 + infected@S1 + infected@S2 + infected@S3);
        def seed(pkt, pt) state infected(0) {{
            if infected == 0 {{ infected = 1; fwd(uniformInt(1, 3)); }} else {{ drop; }}
        }}
        def gossip(pkt, pt) state infected(0) {{
            if infected == 0 {{
                infected = 1; dup;
                fwd(uniformInt(1, 3)); fwd(uniformInt(1, 3));
            }} else {{ drop; }}
        }}
        "#,
        links = links.join(", ")
    );
    let m = model(&src);
    let est = smc(&m, &*scheduler_for(&m), &m.queries[0], &opts(2000, 3)).unwrap();
    assert!((est.value - 94.0 / 27.0).abs() < 0.1, "estimate {est}");
}

#[test]
fn smc_handles_observations() {
    // Prior coin(1/3); observation passes surely when heads, w.p. 1/2
    // otherwise: posterior P(heads) = 1/2; Z = 1/3 + 2/3 * 1/2 = 2/3.
    let src = r#"
        packet_fields { dst }
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> a, B -> b }
        init { packet -> (A, pt1); }
        query probability(coin@A == 1);
        def a(pkt, pt) state coin(flip(1/3)) {
            observe(coin == 1 or flip(1/2));
            drop;
        }
        def b(pkt, pt) { drop; }
    "#;
    let m = model(src);
    let est = smc(&m, &*scheduler_for(&m), &m.queries[0], &opts(4000, 13)).unwrap();
    assert!((est.value - 0.5).abs() < 0.04, "estimate {est}");
    assert!((est.z_estimate - 2.0 / 3.0).abs() < 0.05, "Z {est:?}");

    let est = rejection(&m, &*scheduler_for(&m), &m.queries[0], &opts(4000, 17)).unwrap();
    assert!((est.value - 0.5).abs() < 0.04, "estimate {est}");
    assert!((est.z_estimate - 2.0 / 3.0).abs() < 0.05, "Z {est:?}");
}

#[test]
fn seeded_runs_are_reproducible() {
    let m = model(RELIABILITY_SRC);
    let a = smc(&m, &*scheduler_for(&m), &m.queries[0], &opts(500, 42)).unwrap();
    let b = smc(&m, &*scheduler_for(&m), &m.queries[0], &opts(500, 42)).unwrap();
    assert_eq!(a.value, b.value);
    let c = smc(&m, &*scheduler_for(&m), &m.queries[0], &opts(500, 43)).unwrap();
    // Different seeds almost surely differ on a continuous-ish estimate.
    assert!(a.value != c.value || a.std_error != c.std_error);
}
