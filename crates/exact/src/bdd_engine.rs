//! The knowledge-compilation exact backend: explores the same global Markov
//! chain as [`analyze`](crate::engine::analyze), but represents each step's
//! frontier as [`bayonet_bdd`] algebraic decision diagrams instead of an
//! explicit configuration list.
//!
//! # Factoring
//!
//! A global configuration is a scheduler state plus one local configuration
//! per node. Local configurations are interned to dense ids, and a weighted
//! *set* of global configurations becomes one diagram whose block `b` holds
//! the id of node `b`'s local configuration (see the [`bayonet_bdd`] crate
//! docs for the encoding). The frontier is partitioned into groups keyed by
//! `(sched_state, per-node queue flags, guard)` — everything the scheduler
//! distribution and action enabling depend on — so one scheduler call and
//! one set-level transform replace thousands of per-configuration ones:
//!
//! * `(Run, i)`: handler branches are enumerated **once per distinct local
//!   configuration of node `i`** (memoized on `(node, id, guard)`), and one
//!   [`transform`] pass applies every branch to every represented
//!   configuration simultaneously, rebuilding the shared diagram prefix
//!   once per *successor group* instead of once per configuration.
//! * `(Fwd, i)`: the queue pop at `i` and the push at the link destination
//!   are a nested pair of block transforms in one pass.
//!
//! Conditional independence between nodes shows up as structure sharing, so
//! product-shaped frontiers cost diagram nodes linear — not exponential —
//! in the node count.
//!
//! # Parity with enumeration
//!
//! The produced [`Analysis`] is **bit-identical** to the enumeration
//! engine's: identical terminals (same canonical sort), identical discarded
//! mass per guard, and identical `steps`/`expansions`/`peak_configs`
//! (diagram paths count exactly the merged configurations enumeration would
//! track). Exact rational arithmetic is order-insensitive, so regrouping
//! sums and products cannot perturb a single bit of the posterior.
//! `merge_hits` counts diagram-level merges instead of per-configuration
//! ones and therefore differs; `crates/exact/tests/differential.rs` pins the
//! posterior equality over every curated example and generated corpus. The
//! backend is single-threaded — diagrams make the work small instead of
//! parallel — and ignores `threads`, which keeps it trivially deterministic
//! across the thread matrix. Groups are expanded in sorted key order, so
//! every reported statistic (including the `bayonet_bdd_*` counters) is
//! deterministic as well.
//!
//! One deliberate divergence: a branch of exactly zero weight (`flip(0)` /
//! `flip(1)`, which no curated or generated program uses) is dropped here,
//! while enumeration carries the zero-mass configuration explicitly.

use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;
use std::sync::Arc;

use bayonet_bdd::{FastMap, NodeRef, Store, BLOCK_BITS};
use bayonet_num::Rat;
use bayonet_symbolic::{FeasibilityCache, Guard};

use bayonet_net::opt::SymmetryGroup;
use bayonet_net::{
    initial_config, run_handler, Action, GlobalConfig, HandlerOutcome, Model, NodeConfig, Packet,
    Scheduler, SemanticsError, Val,
};

use crate::engine::{Analysis, EngineStats, ExactError, ExactOptions};
use crate::enumerate::enumerate_eval_cached;

/// Dense interner for node-local configurations: block `b` of every diagram
/// stores indices into this table.
#[derive(Default)]
struct Interner {
    list: Vec<NodeConfig>,
    /// `(q_in nonempty, q_out nonempty)` per id — the action-enabling flags.
    flags: Vec<(bool, bool)>,
    errors: Vec<bool>,
    map: HashMap<NodeConfig, u32>,
}

impl Interner {
    fn id(&mut self, cfg: NodeConfig) -> u32 {
        if let Some(&id) = self.map.get(&cfg) {
            return id;
        }
        let id = self.list.len() as u32;
        self.flags
            .push((!cfg.q_in.is_empty(), !cfg.q_out.is_empty()));
        self.errors.push(cfg.error);
        self.list.push(cfg.clone());
        self.map.insert(cfg, id);
        id
    }

    fn get(&self, id: u32) -> &NodeConfig {
        &self.list[id as usize]
    }

    fn flag(&self, id: u32) -> (bool, bool) {
        self.flags[id as usize]
    }
}

/// Frontier group key: everything action enabling and the scheduler
/// distribution can depend on. Groups are expanded in sorted order so every
/// statistic the engine reports is deterministic.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct GroupKey {
    sched_state: u32,
    flags: Vec<(bool, bool)>,
    guard: Guard,
}

impl GroupKey {
    fn enabled(&self) -> Vec<Action> {
        let mut out = Vec::new();
        for (i, &(q_in, _)) in self.flags.iter().enumerate() {
            if q_in {
                out.push(Action::Run(i));
            }
        }
        for (i, &(_, q_out)) in self.flags.iter().enumerate() {
            if q_out {
                out.push(Action::Fwd(i));
            }
        }
        out
    }
}

/// One memoized handler branch of `(Run, i)` on a given local configuration.
struct RunBranch {
    weight: Rat,
    /// `weight` interned in the store (id arithmetic avoids re-hashing).
    weight_id: u32,
    guard: Guard,
    outcome: HandlerOutcome,
    /// Interned successor local configuration (error flag already applied
    /// for `AssertFailed`). Unused for `ObserveFailed`.
    new_id: u32,
}

/// The memoized effect of `(Fwd, i)` on one local configuration of `i`.
enum FwdInfo {
    /// The link loops back to the sender: pop and push both applied.
    Local { new_id: u32 },
    /// Pop applied at the sender; the packet lands at `dst`.
    Remote {
        new_id: u32,
        dst: usize,
        /// Interned `(packet, arrival port)` delivery context.
        ctx: u32,
    },
}

impl FwdInfo {
    fn dst(&self, i: usize) -> usize {
        match self {
            FwdInfo::Local { .. } => i,
            FwdInfo::Remote { dst, .. } => *dst,
        }
    }
}

/// Memo tables and model context shared by the transform leaf callbacks.
struct Ctx<'a> {
    model: &'a Model,
    fm_pruning: bool,
    cache: Option<&'a FeasibilityCache>,
    interner: Interner,
    run_memo: HashMap<(usize, u32), RunMemo>,
    fwd_memo: HashMap<(usize, u32), Rc<FwdInfo>>,
    /// Packet arrivals: `(dst local config, delivery ctx) -> successor id`.
    push_memo: HashMap<(u32, u32), u32>,
    /// Interned `(packet, arrival port)` delivery contexts.
    ctx_list: Vec<(Packet, u32)>,
    ctx_map: HashMap<(Packet, u32), u32>,
}

impl Ctx<'_> {
    /// Interns a `(packet, arrival port)` delivery context.
    fn ctx_id(&mut self, pkt: Packet, port: u32) -> u32 {
        if let Some(&id) = self.ctx_map.get(&(pkt.clone(), port)) {
            return id;
        }
        let id = self.ctx_list.len() as u32;
        self.ctx_list.push((pkt.clone(), port));
        self.ctx_map.insert((pkt, port), id);
        id
    }

    /// The handler branches of `(Run, i)` on local configuration `v` under
    /// `guard` — computed once per distinct `(i, v, guard)`.
    fn run_branches(
        &mut self,
        store: &mut Store,
        i: usize,
        v: u32,
        guard: &Guard,
    ) -> Result<Rc<Vec<RunBranch>>, ExactError> {
        if let Some(entries) = self.run_memo.get(&(i, v)) {
            // Guards per (node, config) are few; a linear scan beats
            // cloning the guard into a hash key on every leaf.
            if let Some((_, b)) = entries.iter().find(|(g, _)| g == guard) {
                return Ok(Rc::clone(b));
            }
        }
        let model = self.model;
        let interner = &self.interner;
        let raw = enumerate_eval_cached(guard, self.fm_pruning, self.cache, |driver| {
            let mut node_cfg = interner.get(v).clone();
            let outcome = run_handler(model, i, &mut node_cfg, driver)?;
            Ok((node_cfg, outcome))
        })?;
        let recs: Vec<RunBranch> = raw
            .into_iter()
            .map(|b| {
                let (mut node_cfg, outcome) = b.result;
                if outcome == HandlerOutcome::AssertFailed {
                    node_cfg.error = true;
                }
                RunBranch {
                    weight_id: store.intern_weight(&b.weight),
                    weight: b.weight,
                    guard: b.guard,
                    outcome,
                    new_id: self.interner.id(node_cfg),
                }
            })
            .collect();
        let recs = Rc::new(recs);
        self.run_memo
            .entry((i, v))
            .or_default()
            .push((guard.clone(), Rc::clone(&recs)));
        Ok(recs)
    }

    /// The effect of `(Fwd, i)` on local configuration `v` — computed once
    /// per distinct `(i, v)`.
    fn fwd_info(&mut self, i: usize, v: u32) -> Result<Rc<FwdInfo>, ExactError> {
        if let Some(info) = self.fwd_memo.get(&(i, v)) {
            return Ok(Rc::clone(info));
        }
        let mut nc = self.interner.get(v).clone();
        let (pkt, port) = nc.q_out.pop_front().expect("Fwd was enabled");
        let (dst, dst_port) = self
            .model
            .link_dest(i, port)
            .ok_or(SemanticsError::NoLinkOnPort { node: i, port })?;
        let info = if dst == i {
            // Self-link: drop silently on a full queue, like `deliver`.
            nc.q_in.push_back((pkt, dst_port));
            FwdInfo::Local {
                new_id: self.interner.id(nc),
            }
        } else {
            FwdInfo::Remote {
                new_id: self.interner.id(nc),
                dst,
                ctx: self.ctx_id(pkt, dst_port),
            }
        };
        let info = Rc::new(info);
        self.fwd_memo.insert((i, v), Rc::clone(&info));
        Ok(info)
    }

    /// Delivers context `ctx` to local configuration `u` (the G-Fwd push,
    /// with silent congestion drop on a full queue) — memoized.
    fn push(&mut self, u: u32, ctx: u32) -> u32 {
        if let Some(&u2) = self.push_memo.get(&(u, ctx)) {
            return u2;
        }
        let (pkt, port) = self.ctx_list[ctx as usize].clone();
        let mut nd = self.interner.get(u).clone();
        nd.q_in.push_back((pkt, port));
        let u2 = self.interner.id(nd);
        self.push_memo.insert((u, ctx), u2);
        u2
    }
}

/// Merged per-tag transform results. Kept sorted by tag.
type Pieces<T> = Rc<Vec<(T, NodeRef)>>;

/// A [`transform`] leaf callback's result: tagged replacement pieces.
type LeafPieces<T> = Result<Vec<(T, NodeRef)>, ExactError>;

/// Memoized [`Ctx::run_branches`] expansions for one `(node, config)`
/// pair: the guard each entry was derived under, plus the shared branches.
type RunMemo = Vec<(Guard, Rc<Vec<RunBranch>>)>;

/// Tag of the inner pop-side transform of an upward remote forward: the
/// interned delivery context plus the popped node's `(sched, active)` flags.
type PopTag = (u32, (bool, bool));

/// Adds `piece` into the accumulator under `tag`, merging diagrams for
/// repeated tags.
fn merge_piece<T: Ord>(store: &mut Store, acc: &mut Vec<(T, NodeRef)>, tag: T, piece: NodeRef) {
    if piece == NodeRef::ZERO {
        return;
    }
    for (t, p) in acc.iter_mut() {
        if *t == tag {
            *p = store.add(*p, piece);
            return;
        }
    }
    acc.push((tag, piece));
}

/// The batched set-level rewrite: walks `r` down to the block starting at
/// variable `base`, calls `leaf` once per distinct `(id, below)` pair
/// stored there, and rebuilds the prefix **once per output tag** — the
/// shared structure above the block is never duplicated per configuration.
///
/// `leaf` returns `(tag, replacement)` pieces; pieces under equal tags are
/// summed. The result maps each tag to a complete diagram, **relative to
/// the weight-one representative of `r`** — the caller must rescale every
/// piece by `r`'s edge weight ([`Store::edge_weight`] / [`Store::rescale`]).
/// Memoizing per structure node is sound because every leaf is linear in
/// its suffix weight, and it lets proportional diagrams share one pass.
fn transform<T: Clone + Ord>(
    store: &mut Store,
    r: NodeRef,
    base: u32,
    leaf: &mut dyn FnMut(&mut Store, u32, NodeRef) -> LeafPieces<T>,
    memo: &mut FastMap<u32, Pieces<T>>,
) -> Result<Pieces<T>, ExactError> {
    if r == NodeRef::ZERO {
        return Ok(Rc::new(Vec::new()));
    }
    let key = store.structure(r);
    if let Some(p) = memo.get(&key) {
        return Ok(Rc::clone(p));
    }
    let unit = store.unit(r);
    let (var, lo, hi) = store
        .children(unit)
        .expect("diagram ends before the target block");
    let mut out: Vec<(T, NodeRef)>;
    if var >= base {
        out = Vec::new();
        for (id, below) in store.decode_block(unit) {
            for (tag, piece) in leaf(store, id, below)? {
                merge_piece(store, &mut out, tag, piece);
            }
        }
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    } else {
        let lo_p = transform(store, lo, base, leaf, memo)?;
        let hi_p = transform(store, hi, base, leaf, memo)?;
        let lo_w = store.edge_weight(lo);
        let hi_w = store.edge_weight(hi);
        // Merge the two sorted piece lists, pairing equal tags and
        // reapplying each child's edge weight.
        out = Vec::new();
        let (mut x, mut y) = (lo_p.iter().peekable(), hi_p.iter().peekable());
        loop {
            let (tag, node) = match (x.peek(), y.peek()) {
                (None, None) => break,
                (Some((t, p)), None) => {
                    let pl = store.rescale(*p, lo_w);
                    let n = store.mk_node(var, pl, NodeRef::ZERO);
                    let t = t.clone();
                    x.next();
                    (t, n)
                }
                (None, Some((t, p))) => {
                    let ph = store.rescale(*p, hi_w);
                    let n = store.mk_node(var, NodeRef::ZERO, ph);
                    let t = t.clone();
                    y.next();
                    (t, n)
                }
                (Some((tx, px)), Some((ty, py))) => match tx.cmp(ty) {
                    std::cmp::Ordering::Less => {
                        let pl = store.rescale(*px, lo_w);
                        let n = store.mk_node(var, pl, NodeRef::ZERO);
                        let t = tx.clone();
                        x.next();
                        (t, n)
                    }
                    std::cmp::Ordering::Greater => {
                        let ph = store.rescale(*py, hi_w);
                        let n = store.mk_node(var, NodeRef::ZERO, ph);
                        let t = ty.clone();
                        y.next();
                        (t, n)
                    }
                    std::cmp::Ordering::Equal => {
                        let pl = store.rescale(*px, lo_w);
                        let ph = store.rescale(*py, hi_w);
                        let n = store.mk_node(var, pl, ph);
                        let t = tx.clone();
                        x.next();
                        y.next();
                        (t, n)
                    }
                },
            };
            if node != NodeRef::ZERO {
                out.push((tag, node));
            }
        }
    }
    let out = Rc::new(out);
    memo.insert(key, Rc::clone(&out));
    Ok(out)
}

/// Output tag of a `(Run, i)` transform: where the successor diagram goes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
enum RunTag {
    /// Mass removed by a failed observation under this branch guard.
    Discard(Guard),
    /// A surviving successor: branch guard, node `i`'s new queue flags, and
    /// whether the handler asserted (error configurations are terminal).
    Go {
        guard: Guard,
        flags: (bool, bool),
        error: bool,
    },
}

/// Output tag of a `(Fwd, i)` transform: the successor's full flag vector
/// (the guard and scheduler state are unchanged by G-Fwd within one
/// action), packed two bits per node. Tags are cloned, compared, and hashed
/// once per leaf call, so they must stay allocation-free; the packing caps
/// the backend at 64 nodes (larger models fall back to enumeration — see
/// the dispatch in [`crate::engine::analyze`]).
type FwdTag = u128;

/// Packs a flag vector two bits per node: bit `2i` is `q_in` nonempty, bit
/// `2i + 1` is `q_out` nonempty.
fn pack_flags(flags: &[(bool, bool)]) -> u128 {
    let mut out = 0u128;
    for (i, &(q_in, q_out)) in flags.iter().enumerate() {
        out |= (q_in as u128) << (2 * i);
        out |= (q_out as u128) << (2 * i + 1);
    }
    out
}

/// Overwrites node `i`'s two bits in a packed flag vector.
fn set_flags(packed: u128, i: usize, (q_in, q_out): (bool, bool)) -> u128 {
    let cleared = packed & !(0b11u128 << (2 * i));
    cleared | ((q_in as u128) << (2 * i)) | ((q_out as u128) << (2 * i + 1))
}

/// Unpacks a flag vector for `k` nodes.
fn unpack_flags(packed: u128, k: usize) -> Vec<(bool, bool)> {
    (0..k)
        .map(|i| (packed >> (2 * i) & 1 == 1, packed >> (2 * i + 1) & 1 == 1))
        .collect()
}

/// Routes one successor diagram to the next frontier or the terminal
/// accumulator, merging by [`Store::add`].
#[allow(clippy::too_many_arguments)]
fn route(
    store: &mut Store,
    stats: &mut EngineStats,
    next: &mut HashMap<GroupKey, Vec<NodeRef>>,
    terminal: &mut HashMap<(u32, Guard), Vec<NodeRef>>,
    sched_state: u32,
    guard: Guard,
    flags: Vec<(bool, bool)>,
    has_error: bool,
    diagram: NodeRef,
) {
    if diagram == NodeRef::ZERO {
        return;
    }
    if has_error || flags.iter().all(|&(q_in, q_out)| !q_in && !q_out) {
        merge_into(store, stats, terminal, (sched_state, guard), diagram);
    } else {
        let key = GroupKey {
            sched_state,
            flags,
            guard,
        };
        merge_into(store, stats, next, key, diagram);
    }
}

/// Symmetry-aware routing: with a non-trivial automorphism group, every
/// represented configuration is replaced by its orbit representative before
/// it reaches the next frontier or the terminal accumulator, exactly as the
/// enumeration engine does — so `steps`/`expansions`/`peak_configs`/
/// `terminal_configs` stay pinned equal across backends. Canonicalization
/// permutes whole paths across node blocks, which a block-local transform
/// cannot express, so the piece is decoded, canonicalized per path, and
/// re-encoded (orbit-equal paths then merge in the canonical diagram).
/// Without a group this delegates to [`route`] untouched.
#[allow(clippy::too_many_arguments)]
fn canon_route(
    store: &mut Store,
    ctx: &mut Ctx<'_>,
    stats: &mut EngineStats,
    sym: Option<&SymmetryGroup>,
    next: &mut HashMap<GroupKey, Vec<NodeRef>>,
    terminal: &mut HashMap<(u32, Guard), Vec<NodeRef>>,
    sched_state: u32,
    guard: Guard,
    flags: Vec<(bool, bool)>,
    has_error: bool,
    diagram: NodeRef,
) {
    let Some(group) = sym else {
        route(
            store,
            stats,
            next,
            terminal,
            sched_state,
            guard,
            flags,
            has_error,
            diagram,
        );
        return;
    };
    if diagram == NodeRef::ZERO {
        return;
    }
    let mut paths = Vec::new();
    store.enumerate(diagram, &mut paths);
    for (ids, mass) in paths {
        let nodes: Vec<NodeConfig> = ids.iter().map(|&id| ctx.interner.get(id).clone()).collect();
        let mut cfg = GlobalConfig { sched_state, nodes };
        if group.canonicalize(&mut cfg) {
            stats.orbit_merges += 1;
        }
        let ids: Vec<u32> = cfg
            .nodes
            .iter()
            .map(|n| ctx.interner.id(n.clone()))
            .collect();
        let mut d = store.terminal(mass);
        for (block, &id) in ids.iter().enumerate().rev() {
            d = store.encode(block as u32, id, d);
        }
        let flags: Vec<(bool, bool)> = ids.iter().map(|&id| ctx.interner.flag(id)).collect();
        let has_error = ids.iter().any(|&id| ctx.interner.errors[id as usize]);
        route(
            store,
            stats,
            next,
            terminal,
            cfg.sched_state,
            guard.clone(),
            flags,
            has_error,
            d,
        );
    }
}

fn merge_into<K: std::hash::Hash + Eq>(
    _store: &mut Store,
    stats: &mut EngineStats,
    map: &mut HashMap<K, Vec<NodeRef>>,
    key: K,
    diagram: NodeRef,
) {
    let bucket = map.entry(key).or_default();
    if !bucket.is_empty() {
        stats.merge_hits += 1;
    }
    bucket.push(diagram);
}

/// Sums a bucket of routed diagrams with a balanced binary reduction.
///
/// Pairwise folding rebuilds the shared spine once per piece; the balanced
/// tree rebuilds it O(log n) times, which is where the arena churn (and most
/// of the engine's wall-clock) goes on merge-heavy workloads. Exact rational
/// weights make every reduction order produce the same canonical diagram.
fn reduce_bucket(store: &mut Store, mut pieces: Vec<NodeRef>) -> NodeRef {
    while pieces.len() > 1 {
        let mut out = Vec::with_capacity(pieces.len().div_ceil(2));
        let mut it = pieces.chunks_exact(2);
        for pair in &mut it {
            out.push(store.add(pair[0], pair[1]));
        }
        if let [last] = it.remainder() {
            out.push(*last);
        }
        pieces = out;
    }
    pieces.pop().unwrap_or(NodeRef::ZERO)
}

/// Runs the ADD-backed exact engine to the termination fixpoint. Same
/// contract and error behavior as [`analyze`](crate::engine::analyze).
pub(crate) fn analyze_bdd(
    model: &Model,
    scheduler: &dyn Scheduler,
    opts: &ExactOptions,
) -> Result<Analysis, ExactError> {
    let mut stats = EngineStats::default();
    let k = model.num_nodes();
    let step_bound = model.num_steps.unwrap_or(opts.max_global_steps);

    let run_cache: Arc<FeasibilityCache> = opts.feasibility_cache.clone().unwrap_or_default();
    let (hits_before, misses_before) = run_cache.counts();

    // Same gate as the enumeration engine: canonicalize by orbit only when
    // the scheduler commutes with node permutations and parameters are
    // concrete.
    let sym = crate::engine::symmetry_for(model, scheduler);

    let mut store = Store::new();
    let mut ctx = Ctx {
        model,
        fm_pruning: opts.fm_pruning,
        cache: Some(&*run_cache),
        interner: Interner::default(),
        run_memo: HashMap::new(),
        fwd_memo: HashMap::new(),
        push_memo: HashMap::new(),
        ctx_list: Vec::new(),
        ctx_map: HashMap::new(),
    };

    // Initial distribution: identical enumeration to the enumeration engine.
    let mut initial: Vec<(Vec<Vec<Val>>, Rat, Guard)> =
        vec![(Vec::with_capacity(k), Rat::one(), Guard::top())];
    for node in 0..k {
        let prog = &model.programs[node];
        let node_branches =
            enumerate_eval_cached(&Guard::top(), opts.fm_pruning, ctx.cache, |driver| {
                bayonet_net::eval_state_init(model, prog, driver)
            })?;
        let mut next = Vec::with_capacity(initial.len() * node_branches.len());
        for (states, mass, guard) in &initial {
            for b in &node_branches {
                let Some(combined) = guard.conjoin(&b.guard) else {
                    continue; // contradictory parameter assumptions
                };
                let mut states = states.clone();
                states.push(b.result.clone());
                next.push((states, mass * &b.weight, combined));
            }
        }
        initial = next;
    }

    let mut frontier: HashMap<GroupKey, Vec<NodeRef>> = HashMap::new();
    let mut terminal_acc: HashMap<(u32, Guard), Vec<NodeRef>> = HashMap::new();
    let mut discarded: HashMap<Guard, Rat> = HashMap::new();

    for (states, mass, guard) in initial {
        let mut cfg = initial_config(model, states)?;
        if mass.is_zero() {
            continue; // see the module docs: zero-weight branches drop
        }
        if let Some(group) = sym {
            if group.canonicalize(&mut cfg) {
                stats.orbit_merges += 1;
            }
        }
        let ids: Vec<u32> = cfg
            .nodes
            .iter()
            .map(|n| ctx.interner.id(n.clone()))
            .collect();
        let mut diagram = store.terminal(mass);
        for (block, &id) in ids.iter().enumerate().rev() {
            diagram = store.encode(block as u32, id, diagram);
        }
        let flags: Vec<(bool, bool)> = ids.iter().map(|&id| ctx.interner.flag(id)).collect();
        route(
            &mut store,
            &mut stats,
            &mut frontier,
            &mut terminal_acc,
            cfg.sched_state,
            guard,
            flags,
            false,
            diagram,
        );
    }

    while !frontier.is_empty() {
        stats.steps += 1;
        let mut groups: Vec<(GroupKey, NodeRef)> = frontier
            .drain()
            .map(|(key, bucket)| (key, reduce_bucket(&mut store, bucket)))
            .collect();
        groups.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
        let mut live: u64 = 0;
        for (_, d) in &groups {
            live += store.paths(*d);
        }
        if stats.steps > step_bound {
            let mut mass = Rat::zero();
            for (_, d) in &groups {
                mass += &store.mass(*d);
            }
            return Err(ExactError::Unterminated {
                live_configs: live as usize,
                mass: format!("{:.6}", mass.to_f64()),
            });
        }
        stats.peak_configs = stats.peak_configs.max(live as usize);
        if live as usize > opts.max_configs {
            return Err(ExactError::ConfigLimit(opts.max_configs));
        }
        if opts.deadline.expired() {
            return Err(ExactError::Interrupted {
                steps: stats.steps - 1,
                expansions: stats.expansions,
            });
        }
        stats.expansions += live;

        let mut next: HashMap<GroupKey, Vec<NodeRef>> = HashMap::new();
        for (key, root) in groups {
            if opts.deadline.expired() {
                return Err(ExactError::Interrupted {
                    steps: stats.steps - 1,
                    expansions: stats.expansions,
                });
            }
            let enabled = key.enabled();
            debug_assert!(!enabled.is_empty(), "frontier groups are non-terminal");
            for (action, p_sched, sched_next) in
                scheduler.distribution(key.sched_state, &enabled, k)
            {
                if p_sched.is_zero() {
                    continue; // see the module docs: zero-weight branches drop
                }
                match action {
                    Action::Run(i) => {
                        expand_run(
                            &mut store,
                            &mut ctx,
                            &mut stats,
                            sym,
                            &key,
                            root,
                            i,
                            &p_sched,
                            sched_next,
                            &mut next,
                            &mut terminal_acc,
                            &mut discarded,
                        )?;
                    }
                    Action::Fwd(i) => {
                        expand_fwd(
                            &mut store,
                            &mut ctx,
                            &mut stats,
                            sym,
                            &key,
                            root,
                            i,
                            &p_sched,
                            sched_next,
                            &mut next,
                            &mut terminal_acc,
                        )?;
                    }
                }
            }
        }
        frontier = next;
    }

    // Decode the terminal diagrams back into explicit configurations and
    // sort by the enumeration engine's canonical `(config, guard)` key.
    let mut terminals: Vec<(Guard, GlobalConfig, Rat)> = Vec::new();
    for ((sched_state, guard), bucket) in terminal_acc {
        let diagram = reduce_bucket(&mut store, bucket);
        let mut paths = Vec::new();
        store.enumerate(diagram, &mut paths);
        for (ids, mass) in paths {
            debug_assert_eq!(ids.len(), k);
            let nodes: Vec<NodeConfig> =
                ids.iter().map(|&id| ctx.interner.get(id).clone()).collect();
            terminals.push((guard.clone(), GlobalConfig { sched_state, nodes }, mass));
        }
    }
    terminals.sort_unstable_by(|(g1, c1, _), (g2, c2, _)| (c1, g1).cmp(&(c2, g2)));
    stats.terminal_configs = terminals.len();
    let (hits_after, misses_after) = run_cache.counts();
    stats.feasibility_hits = hits_after - hits_before;
    stats.feasibility_misses = misses_after - misses_before;
    let counters = store.counters();
    stats.bdd_nodes = counters.nodes;
    stats.bdd_unique_hits = counters.unique_hits;
    stats.bdd_apply_cache_hits = counters.apply_cache_hits;
    let mut discarded: Vec<(Guard, Rat)> = discarded.into_iter().collect();
    discarded.sort_unstable_by(|(g1, _), (g2, _)| g1.cmp(g2));
    Ok(Analysis {
        terminals: terminals.into_iter().map(|(g, c, m)| (c, g, m)).collect(),
        discarded,
        stats,
    })
}

/// Applies `(Run, i)` with scheduler weight `p_sched` to a whole group in
/// one batched transform.
#[allow(clippy::too_many_arguments)]
fn expand_run(
    store: &mut Store,
    ctx: &mut Ctx<'_>,
    stats: &mut EngineStats,
    sym: Option<&SymmetryGroup>,
    key: &GroupKey,
    root: NodeRef,
    i: usize,
    p_sched: &Rat,
    sched_next: u32,
    next: &mut HashMap<GroupKey, Vec<NodeRef>>,
    terminal_acc: &mut HashMap<(u32, Guard), Vec<NodeRef>>,
    discarded: &mut HashMap<Guard, Rat>,
) -> Result<(), ExactError> {
    let base = i as u32 * BLOCK_BITS;
    let mut memo = FastMap::default();
    let guard = &key.guard;
    let p_id = store.intern_weight(p_sched);
    let pieces = {
        let ctx = &mut *ctx;
        transform::<RunTag>(
            store,
            root,
            base,
            &mut |store, v, below| {
                let branches = ctx.run_branches(store, i, v, guard)?;
                let mut out: Vec<(RunTag, NodeRef)> = Vec::new();
                for b in branches.iter() {
                    if b.weight.is_zero() {
                        continue; // see the module docs
                    }
                    // The scheduler weight is folded into the branch weight
                    // so the diagram is scaled once, not twice (exact
                    // rational products are associative, so the posterior
                    // is unchanged bit for bit). All weight arithmetic is
                    // on interned ids: no rational is re-hashed per leaf.
                    let w = store.mul_weights(b.weight_id, p_id);
                    match b.outcome {
                        HandlerOutcome::ObserveFailed => {
                            // Keep the restricted sub-diagram; its mass is
                            // taken after the prefix is rebuilt so shared
                            // suffixes are weighted by their multiplicity.
                            let piece = store.scale_id(below, w);
                            merge_piece(store, &mut out, RunTag::Discard(b.guard.clone()), piece);
                        }
                        HandlerOutcome::Completed | HandlerOutcome::AssertFailed => {
                            let scaled = store.scale_id(below, w);
                            let piece = store.encode(i as u32, b.new_id, scaled);
                            let tag = RunTag::Go {
                                guard: b.guard.clone(),
                                flags: ctx.interner.flag(b.new_id),
                                error: ctx.interner.errors[b.new_id as usize],
                            };
                            merge_piece(store, &mut out, tag, piece);
                        }
                    }
                }
                Ok(out)
            },
            &mut memo,
        )?
    };
    let root_w = store.edge_weight(root);
    for (tag, piece) in pieces.iter() {
        let piece = store.rescale(*piece, root_w);
        match tag {
            RunTag::Discard(g) => {
                let lost = store.mass(piece);
                *discarded.entry(g.clone()).or_insert_with(Rat::zero) += &lost;
            }
            RunTag::Go {
                guard,
                flags: node_flags,
                error,
            } => {
                let mut flags = key.flags.clone();
                flags[i] = *node_flags;
                canon_route(
                    store,
                    ctx,
                    stats,
                    sym,
                    next,
                    terminal_acc,
                    sched_next,
                    guard.clone(),
                    flags,
                    *error,
                    piece,
                );
            }
        }
    }
    Ok(())
}

/// Applies `(Fwd, i)` with scheduler weight `p_sched` to a whole group.
/// Destinations may differ per local configuration (different head-of-queue
/// ports), so the transform runs once per destination node.
#[allow(clippy::too_many_arguments)]
fn expand_fwd(
    store: &mut Store,
    ctx: &mut Ctx<'_>,
    stats: &mut EngineStats,
    sym: Option<&SymmetryGroup>,
    key: &GroupKey,
    root: NodeRef,
    i: usize,
    p_sched: &Rat,
    sched_next: u32,
    next: &mut HashMap<GroupKey, Vec<NodeRef>>,
    terminal_acc: &mut HashMap<(u32, Guard), Vec<NodeRef>>,
) -> Result<(), ExactError> {
    let base_i = i as u32 * BLOCK_BITS;
    let k = key.flags.len();
    let base_flags = pack_flags(&key.flags);
    let p_id = store.intern_weight(p_sched);
    let mut dsts: BTreeSet<usize> = BTreeSet::new();
    for v in store.ids_at_block(root, i as u32) {
        dsts.insert(ctx.fwd_info(i, v)?.dst(i));
    }
    for dst in dsts {
        let base_d = dst as u32 * BLOCK_BITS;
        let pieces = if dst == i {
            // Self-link: one block rewrite.
            let mut memo = FastMap::default();
            let ctx = &mut *ctx;
            transform::<FwdTag>(
                store,
                root,
                base_i,
                &mut |store, v, below| {
                    let info = ctx.fwd_info(i, v)?;
                    let FwdInfo::Local { new_id } = &*info else {
                        return Ok(Vec::new()); // another destination's bucket
                    };
                    // The scheduler weight is applied at the suffix, once
                    // per distinct suffix, so the prefix above is rebuilt
                    // exactly once per action.
                    let below = store.scale_id(below, p_id);
                    let piece = store.encode(i as u32, *new_id, below);
                    let flags = set_flags(base_flags, i, ctx.interner.flag(*new_id));
                    Ok(vec![(flags, piece)])
                },
                &mut memo,
            )?
        } else if dst > i {
            // Pop at block i, then push at the deeper block dst: the inner
            // transform runs inside each popped suffix. Inner memos are
            // shared per delivery context so suffixes shared across sender
            // configurations are rewritten once.
            let mut memo = FastMap::default();
            let mut inner_memos: FastMap<u32, FastMap<u32, Pieces<(bool, bool)>>> =
                FastMap::default();
            let ctx = &mut *ctx;
            transform::<FwdTag>(
                store,
                root,
                base_i,
                &mut |store, v, below| {
                    let info = ctx.fwd_info(i, v)?;
                    let FwdInfo::Remote {
                        new_id,
                        dst: d,
                        ctx: delivery,
                    } = &*info
                    else {
                        return Ok(Vec::new());
                    };
                    if *d != dst {
                        return Ok(Vec::new()); // another destination's bucket
                    }
                    let (new_id, delivery) = (*new_id, *delivery);
                    let inner_memo = inner_memos.entry(delivery).or_default();
                    let arrived = transform::<(bool, bool)>(
                        store,
                        below,
                        base_d,
                        &mut |store, u, below2| {
                            let u2 = ctx.push(u, delivery);
                            let below2 = store.scale_id(below2, p_id);
                            let piece = store.encode(dst as u32, u2, below2);
                            Ok(vec![(ctx.interner.flag(u2), piece)])
                        },
                        inner_memo,
                    )?;
                    let mut out: Vec<(FwdTag, NodeRef)> = Vec::new();
                    let sender = set_flags(base_flags, i, ctx.interner.flag(new_id));
                    let below_w = store.edge_weight(below);
                    for (dst_flags, piece) in arrived.iter() {
                        let piece = store.rescale(*piece, below_w);
                        let topped = store.encode(i as u32, new_id, piece);
                        let flags = set_flags(sender, dst, *dst_flags);
                        merge_piece(store, &mut out, flags, topped);
                    }
                    Ok(out)
                },
                &mut memo,
            )?
        } else {
            // dst < i: the push happens above the pop. The outer transform
            // rewrites block dst; its leaf first rewrites block i inside
            // the suffix, bubbling the delivery context up as a tag. The
            // inner memo is shared across receivers — the pop result is
            // independent of the receiving node's configuration.
            let mut memo = FastMap::default();
            let mut inner_memo: FastMap<u32, Pieces<PopTag>> = FastMap::default();
            let ctx = &mut *ctx;
            transform::<FwdTag>(
                store,
                root,
                base_d,
                &mut |store, u, below| {
                    let popped = transform::<PopTag>(
                        store,
                        below,
                        base_i,
                        &mut |store, v, below2| {
                            let info = ctx.fwd_info(i, v)?;
                            let FwdInfo::Remote {
                                new_id,
                                dst: d,
                                ctx: delivery,
                            } = &*info
                            else {
                                return Ok(Vec::new());
                            };
                            if *d != dst {
                                return Ok(Vec::new());
                            }
                            let below2 = store.scale_id(below2, p_id);
                            let piece = store.encode(i as u32, *new_id, below2);
                            Ok(vec![((*delivery, ctx.interner.flag(*new_id)), piece)])
                        },
                        &mut inner_memo,
                    )?;
                    let mut out: Vec<(FwdTag, NodeRef)> = Vec::new();
                    let below_w = store.edge_weight(below);
                    for ((delivery, i_flags), piece) in popped.iter() {
                        let piece = store.rescale(*piece, below_w);
                        let u2 = ctx.push(u, *delivery);
                        let topped = store.encode(dst as u32, u2, piece);
                        let flags = set_flags(
                            set_flags(base_flags, dst, ctx.interner.flag(u2)),
                            i,
                            *i_flags,
                        );
                        merge_piece(store, &mut out, flags, topped);
                    }
                    Ok(out)
                },
                &mut memo,
            )?
        };
        let root_w = store.edge_weight(root);
        for (flags, piece) in pieces.iter() {
            let piece = store.rescale(*piece, root_w);
            canon_route(
                store,
                ctx,
                stats,
                sym,
                next,
                terminal_acc,
                sched_next,
                key.guard.clone(),
                unpack_flags(*flags, k),
                false,
                piece,
            );
        }
    }
    Ok(())
}
