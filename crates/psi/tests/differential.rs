//! Differential testing: the direct exact engine (state-merging explorer)
//! against the PSI backend (translation + trace enumeration) must compute
//! identical posteriors. This validates the paper's central claim — that
//! network inference can be phrased, without loss, as inference on a
//! translated probabilistic program (§4).

use bayonet_exact::{analyze, answer, ExactOptions};
use bayonet_lang::parse;
use bayonet_net::{compile, scheduler_for, Model};
use bayonet_num::Rat;
use bayonet_psi::{infer_query, translate, DEFAULT_STEP_LIMIT};

fn model(src: &str) -> Model {
    compile(&parse(src).unwrap()).unwrap()
}

/// Asserts every query of `model` agrees between the two backends.
fn assert_backends_agree(m: &Model) {
    let analysis = analyze(m, &*scheduler_for(m), &ExactOptions::default()).unwrap();
    for query in &m.queries {
        let direct = answer(m, &analysis, query, true).unwrap().rat().clone();
        let program = translate(m, query).unwrap();
        let via_psi = infer_query(&program, query.kind, DEFAULT_STEP_LIMIT).unwrap();
        assert_eq!(
            direct, via_psi,
            "backend mismatch on {:?}: direct={direct}, psi={via_psi}",
            query.source
        );
    }
}

#[test]
fn coin_forwarding() {
    let m = model(
        r#"
        packet_fields { dst }
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> send, B -> recv }
        init { packet -> (A, pt1); }
        query probability(got@B == 1);
        query expectation(got@B);
        def send(pkt, pt) { if flip(1/3) { fwd(1); } else { drop; } }
        def recv(pkt, pt) state got(0) { got = 1; drop; }
        "#,
    );
    assert_backends_agree(&m);
}

#[test]
fn reliability_diamond() {
    let m = model(
        r#"
        packet_fields { dst }
        topology {
            nodes { H0, S0, S1, S2, S3, H1 }
            links {
                (H0, pt1) <-> (S0, pt1),
                (S0, pt2) <-> (S1, pt1),
                (S0, pt3) <-> (S2, pt1),
                (S1, pt2) <-> (S3, pt1),
                (S2, pt2) <-> (S3, pt2),
                (S3, pt3) <-> (H1, pt1)
            }
        }
        programs { H0 -> h0, S0 -> s0, S1 -> s1, S2 -> s2, S3 -> s3, H1 -> h1 }
        init { packet -> (H0, pt1); }
        query probability(arrived@H1);
        def h0(pkt, pt) { fwd(1); }
        def s0(pkt, pt) { if flip(1/2) { fwd(2); } else { fwd(3); } }
        def s1(pkt, pt) { fwd(2); }
        def s2(pkt, pt) state failing(2) {
            if failing == 2 { failing = flip(1/1000); }
            if failing == 1 { drop; } else { fwd(2); }
        }
        def s3(pkt, pt) { fwd(3); }
        def h1(pkt, pt) state arrived(0) { arrived = 1; drop; }
        "#,
    );
    assert_backends_agree(&m);
}

#[test]
fn congestion_with_capacity_one() {
    // Two packets race through a capacity-1 relay: drops depend on the
    // scheduler interleaving — exercises capacity handling end to end.
    let m = model(
        r#"
        packet_fields { dst }
        queue_capacity 1;
        topology {
            nodes { A, B, C }
            links { (A, pt1) <-> (B, pt1), (B, pt2) <-> (C, pt1) }
        }
        programs { A -> src, B -> relay, C -> sink }
        init { packet -> (A, pt1); }
        query probability(got@C < 2);
        query expectation(got@C);
        def src(pkt, pt) state sent(0) {
            if sent < 2 {
                sent = sent + 1;
                fwd(1);
                if sent < 2 { new; }
            } else { drop; }
        }
        def relay(pkt, pt) { fwd(2); }
        def sink(pkt, pt) state got(0) { got = got + 1; drop; }
        "#,
    );
    assert_backends_agree(&m);
}

#[test]
fn observation_posteriors_agree() {
    let m = model(
        r#"
        packet_fields { id }
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> send, B -> recv }
        init { packet -> (A, pt1); }
        query probability(mode@A == 1);
        def send(pkt, pt) state mode(flip(1/4)), sent(0) {
            if sent < 2 {
                sent = sent + 1;
                dup;
                pkt.id = sent;
                if mode == 1 { fwd(1); }
                else { if flip(1/2) { fwd(1); } else { drop; } }
            } else { drop; }
        }
        def recv(pkt, pt) state seen(0) {
            seen = seen + 1;
            observe(pkt.id == seen);
            drop;
        }
        "#,
    );
    assert_backends_agree(&m);
}

#[test]
fn assert_error_states_agree() {
    let m = model(
        r#"
        packet_fields { dst }
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> a, B -> b }
        init { packet -> (A, pt1); }
        query probability(x@A == 5);
        def a(pkt, pt) state x(0) {
            if flip(1/4) { x = 5; assert(0); x = 7; }
            else { x = 2; drop; }
        }
        def b(pkt, pt) { drop; }
        "#,
    );
    assert_backends_agree(&m);
}

#[test]
fn deterministic_scheduler_agrees() {
    let m = model(
        r#"
        packet_fields { dst }
        scheduler roundrobin;
        queue_capacity 1;
        topology {
            nodes { A, B, C }
            links { (A, pt1) <-> (B, pt1), (B, pt2) <-> (C, pt1) }
        }
        programs { A -> src, B -> relay, C -> sink }
        init { packet -> (A, pt1); }
        query expectation(got@C);
        def src(pkt, pt) state sent(0) {
            if sent < 2 {
                sent = sent + 1;
                fwd(1);
                if sent < 2 { new; }
            } else { drop; }
        }
        def relay(pkt, pt) { if flip(1/2) { fwd(2); } else { drop; } }
        def sink(pkt, pt) state got(0) { got = got + 1; drop; }
        "#,
    );
    assert_backends_agree(&m);
}

#[test]
fn while_loops_agree() {
    let m = model(
        r#"
        packet_fields { dst }
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> a, B -> b }
        init { packet -> (A, pt1); }
        query expectation(total@A);
        def a(pkt, pt) state total(0) {
            n = uniformInt(1, 3);
            while n > 0 {
                total = total + n;
                n = n - 1;
            }
            drop;
        }
        def b(pkt, pt) { drop; }
        "#,
    );
    // E[n(n+1)/2] for n ~ U{1,2,3} = (1 + 3 + 6)/3 = 10/3.
    let analysis = analyze(&m, &*scheduler_for(&m), &ExactOptions::default()).unwrap();
    let direct = answer(&m, &analysis, &m.queries[0], true)
        .unwrap()
        .rat()
        .clone();
    assert_eq!(direct, Rat::ratio(10, 3));
    assert_backends_agree(&m);
}

#[test]
fn generated_source_mentions_structure() {
    let m = model(
        r#"
        packet_fields { dst }
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> send, B -> recv }
        init { packet -> (A, pt1); }
        query probability(got@B == 1);
        def send(pkt, pt) { if flip(1/2) { fwd(1); } else { drop; } }
        def recv(pkt, pt) state got(0) { got = 1; drop; }
        "#,
    );
    let psi = bayonet_psi::to_psi(&m);
    assert!(psi.contains("dat send"));
    assert!(psi.contains("dat Network"));
    assert!(psi.contains("def scheduler()"));
    assert!(psi.contains("assert(terminated())"));
    let webppl = bayonet_psi::to_webppl(&m);
    assert!(webppl.contains("Infer({method: 'SMC', particles: 1000}"));
    assert!(webppl.contains("var run_send"));
    // §5: generated code is larger than the Bayonet source.
    let bayonet_len = 300; // roughly the source above
    assert!(psi.len() > bayonet_len);
    assert!(webppl.len() > bayonet_len);
}

#[test]
fn data_dependent_fwd_ports_agree() {
    // Regression for the Fwd translation: the port expression reads the
    // pre-pop head (`pt`, `pkt.f`), so it must be materialized before the
    // pop. B echoes every packet back out the port it arrived on.
    let m = model(
        r#"
        packet_fields { hops }
        topology {
            nodes { A, B, C }
            links { (A, pt1) <-> (B, pt1), (B, pt2) <-> (C, pt1) }
        }
        programs { A -> edge, B -> echo, C -> edge }
        init { packet -> (B, pt2); }
        query expectation(seen@A);
        query expectation(bounced@B);
        def echo(pkt, pt) state bounced(0) {
            bounced = bounced + 1;
            if pkt.hops < 1 {
                pkt.hops = pkt.hops + 1;
                fwd(pt);
            } else { drop; }
        }
        def edge(pkt, pt) state seen(0) { seen = seen + 1; drop; }
        "#,
    );
    assert_backends_agree(&m);
}
