//! Property-based tests validating bignum and rational arithmetic against
//! machine-integer models and algebraic laws.

use std::hash::{DefaultHasher, Hash, Hasher};

use bayonet_num::{BigInt, BigUint, Rat};
use proptest::prelude::*;

fn hash_of<T: Hash>(v: &T) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Values clustered around the small/big representation boundaries (2^63,
/// 2^64) plus uniform words and double words, so every test in this file
/// that uses it exercises both representations and the crossover.
fn arb_boundary_u128() -> impl Strategy<Value = u128> {
    prop_oneof![
        any::<u64>().prop_map(u128::from),
        any::<u128>(),
        (0u32..9).prop_map(|d| ((1u128 << 63) - 4) + d as u128),
        (0u32..9).prop_map(|d| ((1u128 << 64) - 4) + d as u128),
        (0u32..9).prop_map(|d| (u128::MAX - 8) + d as u128),
    ]
}

fn biguint_from_u128(v: u128) -> BigUint {
    BigUint::from(v)
}

prop_compose! {
    /// A BigUint built from up to four random limbs (up to 256 bits).
    fn arb_biguint()(limbs in proptest::collection::vec(any::<u64>(), 0..4)) -> BigUint {
        BigUint::from_limbs(limbs)
    }
}

prop_compose! {
    fn arb_bigint()(mag in arb_biguint(), neg in any::<bool>()) -> BigInt {
        let v = BigInt::from(mag);
        if neg { -v } else { v }
    }
}

prop_compose! {
    fn arb_rat()(n in -1_000_000i64..1_000_000, d in 1i64..1000) -> Rat {
        Rat::ratio(n, d)
    }
}

proptest! {
    #[test]
    fn biguint_add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let s = BigUint::from(a) + BigUint::from(b);
        prop_assert_eq!(s.to_u128(), Some(a as u128 + b as u128));
    }

    #[test]
    fn biguint_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let p = BigUint::from(a) * BigUint::from(b);
        prop_assert_eq!(p.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn biguint_div_rem_invariant(a in arb_biguint(), b in arb_biguint()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn biguint_div_rem_matches_u128(a in any::<u128>(), b in 1u128..) {
        let (q, r) = biguint_from_u128(a).div_rem(&biguint_from_u128(b));
        prop_assert_eq!(q, biguint_from_u128(a / b));
        prop_assert_eq!(r, biguint_from_u128(a % b));
    }

    #[test]
    fn biguint_gcd_divides_both(a in arb_biguint(), b in arb_biguint()) {
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!(a.div_rem(&g).1.is_zero());
            prop_assert!(b.div_rem(&g).1.is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn biguint_gcd_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        fn gcd128(mut a: u128, mut b: u128) -> u128 {
            while b != 0 { let t = a % b; a = b; b = t; }
            a
        }
        prop_assert_eq!(
            biguint_from_u128(a).gcd(&biguint_from_u128(b)),
            biguint_from_u128(gcd128(a, b))
        );
    }

    #[test]
    fn biguint_display_parse_roundtrip(a in arb_biguint()) {
        let s = a.to_string();
        let back: BigUint = s.parse().unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn biguint_shift_roundtrip(a in arb_biguint(), bits in 0u64..200) {
        prop_assert_eq!(&(&a << bits) >> bits, a);
    }

    #[test]
    fn biguint_cmp_consistent_with_sub(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(a.checked_sub(&b).is_some(), a >= b);
    }

    #[test]
    fn bigint_ring_laws(a in arb_bigint(), b in arb_bigint(), c in arb_bigint()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a - &a, BigInt::zero());
    }

    #[test]
    fn bigint_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let (ba, bb) = (BigInt::from(a), BigInt::from(b));
        prop_assert_eq!(&ba + &bb, BigInt::from(a as i128 + b as i128));
        prop_assert_eq!(&ba - &bb, BigInt::from(a as i128 - b as i128));
        prop_assert_eq!(&ba * &bb, BigInt::from(a as i128 * b as i128));
        if b != 0 {
            let (q, r) = ba.div_rem(&bb);
            prop_assert_eq!(q, BigInt::from(a as i128 / b as i128));
            prop_assert_eq!(r, BigInt::from(a as i128 % b as i128));
        }
    }

    #[test]
    fn bigint_ordering_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(BigInt::from(a).cmp(&BigInt::from(b)), (a as i128).cmp(&(b as i128)));
    }

    #[test]
    fn rat_field_laws(a in arb_rat(), b in arb_rat(), c in arb_rat()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        if !b.is_zero() {
            prop_assert_eq!(&(&a / &b) * &b, a.clone());
        }
        prop_assert_eq!(&a - &a, Rat::zero());
    }

    #[test]
    fn rat_lowest_terms_invariant(a in arb_rat(), b in arb_rat()) {
        for v in [&a + &b, &a * &b, &a - &b] {
            let g = v.numer().magnitude().gcd(v.denom());
            prop_assert!(v.is_zero() || g.is_one(), "not reduced: {}", v);
            prop_assert!(!v.denom().is_zero());
        }
    }

    #[test]
    fn rat_ordering_matches_f64(a in arb_rat(), b in arb_rat()) {
        // With numerators < 2^20 and denominators < 2^10, f64 comparison is exact.
        let fa = a.to_f64();
        let fb = b.to_f64();
        if fa != fb {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn rat_display_parse_roundtrip(a in arb_rat()) {
        let back: Rat = a.to_string().parse().unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn rat_floor_ceil_bracket(a in arb_rat()) {
        let fl = Rat::from(a.floor());
        let ce = Rat::from(a.ceil());
        prop_assert!(fl <= a && a <= ce);
        prop_assert!(&ce - &fl <= Rat::one());
    }

    // ---- small/big representation differentials -------------------------
    //
    // The tagged representation must be observationally identical to pure
    // limb arithmetic. These tests cross-check against u128/i128 reference
    // arithmetic on operands straddling the 2^63/2^64 boundaries, and pin
    // Hash/Eq agreement for values reached via small and big code paths.

    #[test]
    fn biguint_boundary_ops_match_u128(a in arb_boundary_u128(), b in arb_boundary_u128()) {
        let (ba, bb) = (BigUint::from(a), BigUint::from(b));
        if let Some(s) = a.checked_add(b) {
            prop_assert_eq!((&ba + &bb).to_u128(), Some(s));
        }
        if let Some(p) = a.checked_mul(b) {
            prop_assert_eq!((&ba * &bb).to_u128(), Some(p));
        }
        if a >= b {
            prop_assert_eq!((&ba - &bb).to_u128(), Some(a - b));
        }
        prop_assert_eq!(ba.cmp(&bb), a.cmp(&b));
        if b != 0 {
            let (q, r) = ba.div_rem(&bb);
            prop_assert_eq!(q.to_u128(), Some(a / b));
            prop_assert_eq!(r.to_u128(), Some(a % b));
        }
    }

    #[test]
    fn biguint_hash_eq_across_representations(v in arb_boundary_u128()) {
        // Reach the same value twice: directly, and by shrinking a value
        // that transited the multi-limb representation.
        let direct = BigUint::from(v);
        let shifted = (BigUint::from(v) << 64u64) >> 64u64;
        let detour = (&BigUint::from(v) + &BigUint::from(u64::MAX)) - BigUint::from(u64::MAX);
        for other in [shifted, detour] {
            prop_assert_eq!(&direct, &other);
            prop_assert_eq!(hash_of(&direct), hash_of(&other));
            prop_assert_eq!(direct.cmp(&other), std::cmp::Ordering::Equal);
            prop_assert_eq!(direct.limbs(), other.limbs());
        }
    }

    #[test]
    fn bigint_boundary_ops_match_i128(a in any::<i64>(), b in any::<i64>()) {
        // i64 extremes exercise the 2^63 sign boundary; products cover the
        // full i128 range without overflow.
        let (ba, bb) = (BigInt::from(a), BigInt::from(b));
        prop_assert_eq!((&ba + &bb).to_i128(), Some(a as i128 + b as i128));
        prop_assert_eq!((&ba - &bb).to_i128(), Some(a as i128 - b as i128));
        prop_assert_eq!((&ba * &bb).to_i128(), Some(a as i128 * b as i128));
    }

    #[test]
    fn rat_ops_match_i128_reference(
        an in any::<i64>(), ad in 1i64..(1 << 31),
        bn in any::<i64>(), bd in 1i64..(1 << 31),
    ) {
        // Reference arithmetic entirely in i128: with |num| < 2^63 and
        // den < 2^31, cross products stay far from overflow.
        let a = Rat::ratio(an, ad);
        let b = Rat::ratio(bn, bd);
        let sum_ref = Rat::new(
            BigInt::from(an as i128 * bd as i128 + bn as i128 * ad as i128),
            BigInt::from(ad as i128 * bd as i128),
        );
        let prod_ref = Rat::new(
            BigInt::from(an as i128 * bn as i128),
            BigInt::from(ad as i128 * bd as i128),
        );
        prop_assert_eq!(&a + &b, sum_ref.clone());
        prop_assert_eq!(&a * &b, prod_ref.clone());
        let mut s = a.clone();
        s += &b;
        prop_assert_eq!(&s, &sum_ref);
        prop_assert_eq!(hash_of(&s), hash_of(&sum_ref));
        let mut p = a.clone();
        p *= &b;
        prop_assert_eq!(&p, &prod_ref);
        prop_assert_eq!(hash_of(&p), hash_of(&prod_ref));
        let mut d = a.clone();
        d -= &b;
        prop_assert_eq!(d, &a - &b);
        prop_assert_eq!(
            a.cmp(&b),
            (an as i128 * bd as i128).cmp(&(bn as i128 * ad as i128))
        );
    }

    #[test]
    fn rat_hash_eq_across_representations(n in any::<i64>(), d in 1i64..(1 << 31)) {
        // The same rational built small and via a huge common factor that
        // forces the limb path before reduction brings it back to words.
        let small = Rat::ratio(n, d);
        let huge = BigInt::from(10) * BigInt::from(10).pow(25);
        let big = Rat::new(BigInt::from(n) * &huge, BigInt::from(d) * &huge);
        prop_assert_eq!(&small, &big);
        prop_assert_eq!(hash_of(&small), hash_of(&big));
        prop_assert_eq!(small.cmp(&big), std::cmp::Ordering::Equal);
        prop_assert_eq!(small.complement(), big.complement());
    }
}
