//! Probabilistic schedulers (paper §3.2, Figure 6).
//!
//! Network nodes execute asynchronously; Bayonet captures the asynchrony
//! with a probabilistic scheduler that selects the next global action. The
//! paper models schedulers as stateful probabilistic programs; here they are
//! trait objects that return an exact distribution over `(action, next
//! scheduler state)` pairs, which serves both engines: the exact engine
//! enumerates the support, the sampling engine draws from it.

use std::fmt;

use bayonet_num::Rat;

use crate::compile::{Model, SchedKind};
use crate::config::Action;

/// A scheduler: a conditional distribution over enabled actions given the
/// scheduler state (paper: `P_s(λ, σ'_s | σ_s, C_1..C_k)`).
///
/// Schedulers are `Send + Sync` so the exact engine can expand frontier
/// configurations from multiple threads.
pub trait Scheduler: fmt::Debug + Send + Sync {
    /// A short human-readable name ("uniform", "det", ...).
    fn name(&self) -> &str;

    /// The distribution over `(action, probability, next state)` given the
    /// current scheduler state and the enabled actions (nonempty, in
    /// canonical order: `Run(0..k)` then `Fwd(0..k)`).
    ///
    /// Probabilities must sum to 1.
    fn distribution(
        &self,
        sched_state: u32,
        enabled: &[Action],
        num_nodes: usize,
    ) -> Vec<(Action, Rat, u32)>;

    /// Whether the distribution commutes with node permutations: permuting
    /// the enabled-action set permutes the returned support with unchanged
    /// probabilities and scheduler states. Required for symmetry reduction
    /// (see `bayonet_net::opt`): the exact engines only canonicalize
    /// frontier configurations by orbit when the scheduler that actually
    /// runs — which `set_scheduler` may have overridden independently of
    /// the model's declared kind — guarantees this. Defaults to `false`;
    /// only the uniform scheduler (stateless, `1/|enabled|` each) opts in.
    fn permutation_invariant(&self) -> bool {
        false
    }
}

/// The uniform scheduler of paper Figure 6: every enabled action is equally
/// likely.
#[derive(Debug, Default, Clone, Copy)]
pub struct UniformScheduler;

impl Scheduler for UniformScheduler {
    fn name(&self) -> &str {
        "uniform"
    }

    fn permutation_invariant(&self) -> bool {
        true
    }

    fn distribution(
        &self,
        sched_state: u32,
        enabled: &[Action],
        _num_nodes: usize,
    ) -> Vec<(Action, Rat, u32)> {
        let p = Rat::ratio(1, enabled.len() as i64);
        enabled
            .iter()
            .map(|&a| (a, p.clone(), sched_state))
            .collect()
    }
}

/// The paper's deterministic scheduler: a fixed priority scan — lowest node
/// id first, `Run` before `Fwd` (i.e. always the first enabled action in
/// canonical order). Under this scheduler a sending host drains its packet
/// budget before anything is forwarded, which is why the congestion
/// benchmarks report probability 1.0 (Table 1).
#[derive(Debug, Default, Clone, Copy)]
pub struct DeterministicScheduler;

impl Scheduler for DeterministicScheduler {
    fn name(&self) -> &str {
        "det"
    }

    fn distribution(
        &self,
        sched_state: u32,
        enabled: &[Action],
        _num_nodes: usize,
    ) -> Vec<(Action, Rat, u32)> {
        vec![(enabled[0], Rat::one(), sched_state)]
    }
}

/// A weighted scheduler: enabled actions of node `i` are selected with
/// probability proportional to `weights[i]`. Models heterogeneous equipment
/// (fast switches, slow links).
#[derive(Debug, Clone)]
pub struct WeightedScheduler {
    weights: Vec<u64>,
}

impl WeightedScheduler {
    /// Creates a weighted scheduler from per-node weights (all positive).
    ///
    /// # Panics
    ///
    /// Panics if any weight is zero.
    pub fn new(weights: Vec<u64>) -> Self {
        assert!(
            weights.iter().all(|&w| w > 0),
            "scheduler weights must be positive"
        );
        WeightedScheduler { weights }
    }
}

impl Scheduler for WeightedScheduler {
    fn name(&self) -> &str {
        "weighted"
    }

    fn distribution(
        &self,
        sched_state: u32,
        enabled: &[Action],
        _num_nodes: usize,
    ) -> Vec<(Action, Rat, u32)> {
        let total: u64 = enabled.iter().map(|a| self.weights[a.node()]).sum();
        enabled
            .iter()
            .map(|&a| {
                (
                    a,
                    Rat::ratio(self.weights[a.node()] as i64, total as i64),
                    sched_state,
                )
            })
            .collect()
    }
}

/// A *stateful* deterministic round-robin scheduler: a cursor sweeps the
/// action space `Run(0), ..., Run(k-1), Fwd(0), ..., Fwd(k-1)` cyclically
/// and picks the first enabled action at or after the cursor; the cursor
/// then advances past it. Demonstrates the paper's stateful-scheduler
/// machinery (the `state` declaration of Figure 6).
#[derive(Debug, Default, Clone, Copy)]
pub struct RotorScheduler;

impl RotorScheduler {
    fn index(a: Action, k: usize) -> u32 {
        match a {
            Action::Run(i) => i as u32,
            Action::Fwd(i) => (k + i) as u32,
        }
    }
}

impl Scheduler for RotorScheduler {
    fn name(&self) -> &str {
        "rotor"
    }

    fn distribution(
        &self,
        sched_state: u32,
        enabled: &[Action],
        num_nodes: usize,
    ) -> Vec<(Action, Rat, u32)> {
        let space = (2 * num_nodes) as u32;
        let cursor = sched_state % space;
        let chosen = enabled
            .iter()
            .min_by_key(|&&a| {
                let idx = Self::index(a, num_nodes);
                (idx + space - cursor) % space
            })
            .copied()
            .expect("distribution called with enabled actions");
        let next = (Self::index(chosen, num_nodes) + 1) % space;
        vec![(chosen, Rat::one(), next)]
    }
}

/// Builds the scheduler selected by the model's source program.
pub fn scheduler_for(model: &Model) -> Box<dyn Scheduler> {
    match &model.scheduler {
        SchedKind::Uniform => Box::new(UniformScheduler),
        SchedKind::Deterministic => Box::new(DeterministicScheduler),
        SchedKind::Rotor => Box::new(RotorScheduler),
        SchedKind::Weighted(ws) => Box::new(WeightedScheduler::new(ws.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acts() -> Vec<Action> {
        vec![Action::Run(0), Action::Run(2), Action::Fwd(1)]
    }

    #[test]
    fn uniform_is_uniform() {
        let d = UniformScheduler.distribution(0, &acts(), 3);
        assert_eq!(d.len(), 3);
        for (_, p, s) in &d {
            assert_eq!(*p, Rat::ratio(1, 3));
            assert_eq!(*s, 0);
        }
        let total: Rat = d.iter().fold(Rat::zero(), |acc, (_, p, _)| acc + p);
        assert_eq!(total, Rat::one());
    }

    #[test]
    fn deterministic_picks_first_enabled() {
        let d = DeterministicScheduler.distribution(7, &acts(), 3);
        assert_eq!(d, vec![(Action::Run(0), Rat::one(), 7)]);
    }

    #[test]
    fn weighted_proportional() {
        let s = WeightedScheduler::new(vec![3, 1, 1]);
        let d = s.distribution(0, &acts(), 3);
        // Weights: Run(0)->3, Run(2)->1, Fwd(1)->1, total 5.
        assert_eq!(d[0].1, Rat::ratio(3, 5));
        assert_eq!(d[1].1, Rat::ratio(1, 5));
        assert_eq!(d[2].1, Rat::ratio(1, 5));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weighted_rejects_zero_weight() {
        let _ = WeightedScheduler::new(vec![1, 0]);
    }

    #[test]
    fn rotor_sweeps_fairly() {
        // k=3: indices Run0=0, Run1=1, Run2=2, Fwd0=3, Fwd1=4, Fwd2=5.
        let enabled = acts(); // indices 0, 2, 4
        let (a1, _, s1) = RotorScheduler.distribution(0, &enabled, 3)[0].clone();
        assert_eq!(a1, Action::Run(0));
        assert_eq!(s1, 1);
        let (a2, _, s2) = RotorScheduler.distribution(s1, &enabled, 3)[0].clone();
        assert_eq!(a2, Action::Run(2));
        assert_eq!(s2, 3);
        let (a3, _, s3) = RotorScheduler.distribution(s2, &enabled, 3)[0].clone();
        assert_eq!(a3, Action::Fwd(1));
        assert_eq!(s3, 5);
        // Wraps around.
        let (a4, _, _) = RotorScheduler.distribution(s3, &enabled, 3)[0].clone();
        assert_eq!(a4, Action::Run(0));
    }
}
