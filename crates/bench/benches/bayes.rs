//! Benchmarks for the §5.5 Bayesian-reasoning scenarios: forwarding-strategy
//! inference (Figure 13) and load-balancing hash diagnosis (Figure 11(d)).

use criterion::{criterion_group, criterion_main, Criterion};

use bayonet::scenarios::{
    bad_hash_posterior, load_balancing, reliability_strategy, strategy_posterior, LB_OBS_GOOD,
};

fn bench_bayes(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec55/bayes");
    group.sample_size(10);

    let strat = reliability_strategy(&[1, 2, 3]).unwrap();
    group.bench_function("strategy_posterior_123", |b| {
        b.iter(|| strategy_posterior(&strat).unwrap())
    });

    let strat13 = reliability_strategy(&[1, 3]).unwrap();
    group.bench_function("strategy_posterior_13", |b| {
        b.iter(|| strategy_posterior(&strat13).unwrap())
    });

    // The load-balancing posterior is the heaviest exact workload
    // (~seconds per run); keep the shorter evidence sequence here.
    let lb = load_balancing(LB_OBS_GOOD).unwrap();
    group.bench_function("load_balancing_posterior", |b| {
        b.iter(|| bad_hash_posterior(&lb).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_bayes);
criterion_main!(benches);
