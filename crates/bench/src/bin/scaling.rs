//! Regenerates the **§5.4 performance-vs-network-size** discussion: how
//! exact and approximate inference scale with topology size, for all three
//! benchmark families.
//!
//! Run with: `cargo run --release -p bayonet-bench --bin scaling`

use bayonet::{scenarios, Rat, Sched};
use bayonet_bench::{fmt_duration, time_exact, time_smc};

fn main() -> Result<(), bayonet::Error> {
    println!("§5.4 — performance vs network size\n");

    println!("Reliability chains (exact engine; single tracked packet):");
    println!(
        "{:>7} {:>7} {:>12} {:>14}",
        "nodes", "exact t", "value", "SMC(1000) t"
    );
    for diamonds in [1usize, 2, 4, 7, 10, 14] {
        let n = scenarios::reliability_chain(diamonds, &Rat::ratio(1, 1000), Sched::Uniform)?;
        let m = time_exact(&n, 0)?;
        let (_, smc_t) = time_smc(&n, 0, 1000, 3)?;
        println!(
            "{:>7} {:>7} {:>12.6} {:>14}",
            2 + 4 * diamonds,
            fmt_duration(m.elapsed),
            m.value.to_f64(),
            fmt_duration(smc_t)
        );
    }

    println!("\nCongestion chains, deterministic scheduler (exact engine; 3 packets):");
    println!("{:>7} {:>7}", "nodes", "exact t");
    for diamonds in [1usize, 3, 7, 12, 24] {
        let n = scenarios::congestion_chain(diamonds, Sched::Deterministic)?;
        let m = time_exact(&n, 0)?;
        assert_eq!(m.value, Rat::one());
        println!("{:>7} {:>7}", 2 + 4 * diamonds, fmt_duration(m.elapsed));
    }

    println!("\nGossip on K_n (exact up to K5, then SMC(1000) — like the paper):");
    println!("{:>7} {:>10} {:>12}", "nodes", "engine", "time");
    for n_nodes in [3usize, 4, 5] {
        let n = scenarios::gossip(n_nodes, Sched::Uniform)?;
        let m = time_exact(&n, 0)?;
        println!(
            "{:>7} {:>10} {:>12}   E = {:.4}",
            n_nodes,
            "exact",
            fmt_duration(m.elapsed),
            m.value.to_f64()
        );
    }
    for n_nodes in [10usize, 20, 30] {
        let n = scenarios::gossip(n_nodes, Sched::Uniform)?;
        let (est, t) = time_smc(&n, 0, 1000, 3)?;
        println!(
            "{:>7} {:>10} {:>12}   E ≈ {:.4}",
            n_nodes,
            "smc",
            fmt_duration(t),
            est.value
        );
    }
    println!("\n(Exact gossip blows up combinatorially past K5 — the paper's PSI run");
    println!(" also did not terminate within an hour at K20; SMC keeps scaling.)");
    Ok(())
}
