//! The `bayonet` command-line tool: check, run, synthesize, and compile
//! Bayonet network programs.
//!
//! ```text
//! bayonet check <file.bay>
//! bayonet run <file.bay> [--engine auto|exact|enum|bdd|smc|rejection|psi]
//!                        [--particles N] [--seed N] [--threads N]
//!                        [--scheduler uniform|det|rotor]
//!                        [--bind NAME=VALUE]... [--stats] [--explain-plan]
//!                        [--no-opt] [--explain-passes]
//! bayonet run <batch.json> --batch [--threads N]
//! bayonet run <file.bay> --sweep <grid.json> [--engine auto|exact|enum|bdd]
//!                        [--bind NAME=VALUE]... [--threads N]
//! bayonet synthesize <file.bay> [--query N] [--maximize]
//! bayonet codegen <file.bay> [--target psi|webppl]
//! bayonet pretty <file.bay>
//! bayonet serve [--addr A] [--threads N] [--cache-entries K]
//!               [--cache-dir DIR] [--cache-max-bytes N]
//!               [--replicas N] [--max-connections N]
//! ```

use std::process::ExitCode;
use std::time::Instant;

use bayonet::{
    plan_model, synthesize_with, ApproxOptions, DeterministicScheduler, EngineKind, ExactOptions,
    Network, Objective, PlanEngine, PlannerConfig, Rat, RotorScheduler, SynthesisOptions,
    UniformScheduler,
};

fn main() -> ExitCode {
    // When spawned as a `serve --replicas N` shard this process is a
    // replica server, not a CLI: the hook detects the replica spec in the
    // environment and never returns.
    bayonet_serve::replica_entry();

    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage: bayonet <check|run|synthesize|codegen|pretty|serve> [<file.bay>] [options]\n\
     run options: --engine auto|exact|enum|bdd|smc|rejection|psi|simulate  --particles N\n\
                  --seed N  --scheduler uniform|det|rotor  --bind NAME=VALUE  --threads N\n\
                  --stats  --explain-plan (print the planner's routing and cost estimate)\n\
                  --no-opt (skip the model-optimization pass pipeline)\n\
                  --explain-passes (print what each optimization pass did)\n\
                  --batch (file is a /v1/batch JSON request; NDJSON frames to stdout)\n\
                  --sweep GRID.json (sweep parameters over a value grid; one NDJSON\n\
                                     frame per grid point, sharing exploration work)\n\
     synthesize options: --query N  --maximize  --allow-zero-params\n\
     codegen options: --target psi|webppl\n\
     serve options: --addr HOST:PORT  --threads N  --cache-entries K\n\
                    --cache-dir DIR  --cache-max-bytes N\n\
                    --replicas N  --max-connections N"
        .to_string()
}

/// Allowed flags per subcommand: `(name, takes_value)`.
const RUN_FLAGS: &[(&str, bool)] = &[
    ("--engine", true),
    ("--particles", true),
    ("--seed", true),
    ("--scheduler", true),
    ("--bind", true),
    ("--threads", true),
    ("--stats", false),
    ("--explain-plan", false),
    ("--no-opt", false),
    ("--explain-passes", false),
    ("--batch", false),
    ("--sweep", true),
];
const SYNTHESIZE_FLAGS: &[(&str, bool)] = &[
    ("--query", true),
    ("--maximize", false),
    ("--allow-zero-params", false),
    ("--scheduler", true),
    ("--bind", true),
];
const CODEGEN_FLAGS: &[(&str, bool)] = &[("--target", true)];
const NO_FLAGS: &[(&str, bool)] = &[];
const SERVE_FLAGS: &[(&str, bool)] = &[
    ("--addr", true),
    ("--threads", true),
    ("--cache-entries", true),
    ("--cache-dir", true),
    ("--cache-max-bytes", true),
    ("--replicas", true),
    ("--max-connections", true),
];

fn run(args: &[String]) -> Result<(), String> {
    if args.first().map(String::as_str) == Some("serve") {
        return serve_cmd(&args[1..]);
    }
    let (cmd, file) = match args {
        [cmd, file, ..] => (cmd.as_str(), file.as_str()),
        _ => return Err(usage()),
    };
    let rest = &args[2..];
    let source = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;

    match cmd {
        "check" => {
            validate_flags(rest, NO_FLAGS)?;
            check(&source)
        }
        "run" => {
            validate_flags(rest, RUN_FLAGS)?;
            if let Some(grid_file) = flag_value(rest, "--sweep") {
                if has_flag(rest, "--batch") {
                    return Err("--batch cannot be combined with --sweep".into());
                }
                run_sweep_cmd(&source, grid_file, rest)
            } else if has_flag(rest, "--batch") {
                run_batch_cmd(&source, rest)
            } else {
                run_queries(&source, rest)
            }
        }
        "synthesize" => {
            validate_flags(rest, SYNTHESIZE_FLAGS)?;
            synthesize_cmd(&source, rest)
        }
        "codegen" => {
            validate_flags(rest, CODEGEN_FLAGS)?;
            codegen(&source, rest)
        }
        "pretty" => {
            validate_flags(rest, NO_FLAGS)?;
            let program = bayonet::parse(&source).map_err(|e| e.to_string())?;
            print!("{}", bayonet::pretty_program(&program));
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

/// Checks `rest` against a flag specification: every argument must be a
/// known flag, and every value-taking flag must be followed by a value
/// (which may not itself look like a flag).
fn validate_flags(rest: &[String], spec: &[(&str, bool)]) -> Result<(), String> {
    let mut i = 0;
    while i < rest.len() {
        let arg = rest[i].as_str();
        match spec.iter().find(|(name, _)| *name == arg) {
            Some((name, true)) => match rest.get(i + 1) {
                Some(v) if !v.starts_with("--") => i += 2,
                _ => return Err(format!("{name} needs a value\n{}", usage())),
            },
            Some((_, false)) => i += 1,
            None if arg.starts_with("--") => {
                return Err(format!("unknown flag `{arg}`\n{}", usage()))
            }
            None => return Err(format!("unexpected argument `{arg}`\n{}", usage())),
        }
    }
    Ok(())
}

fn flag_value<'a>(rest: &'a [String], name: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1))
        .map(String::as_str)
}

fn has_flag(rest: &[String], name: &str) -> bool {
    rest.iter().any(|a| a == name)
}

fn load(source: &str, rest: &[String]) -> Result<Network, String> {
    let mut network = Network::from_source(source).map_err(|e| e.to_string())?;
    for w in network.warnings() {
        eprintln!("warning: {}", w.message);
    }
    // --bind NAME=VALUE (repeatable)
    let mut i = 0;
    while i < rest.len() {
        if rest[i] == "--bind" {
            let spec = rest
                .get(i + 1)
                .ok_or_else(|| "--bind needs NAME=VALUE".to_string())?;
            let (name, value) = spec
                .split_once('=')
                .ok_or_else(|| format!("malformed --bind `{spec}` (want NAME=VALUE)"))?;
            let value: Rat = value
                .parse()
                .map_err(|e| format!("bad value in --bind `{spec}`: {e}"))?;
            network.bind(name, value).map_err(|e| e.to_string())?;
            i += 2;
        } else {
            i += 1;
        }
    }
    match flag_value(rest, "--scheduler") {
        Some("uniform") => network.set_scheduler(Box::new(UniformScheduler)),
        Some("det") | Some("deterministic") => {
            network.set_scheduler(Box::new(DeterministicScheduler))
        }
        Some("rotor") => network.set_scheduler(Box::new(RotorScheduler)),
        Some(other) => return Err(format!("unknown scheduler `{other}`")),
        None => {}
    }
    Ok(network)
}

fn check(source: &str) -> Result<(), String> {
    let program = bayonet::parse(source).map_err(|e| e.to_string())?;
    match bayonet::check(&program) {
        Ok(report) => {
            for w in &report.warnings {
                println!("warning: {}", w.message);
            }
            println!("ok: {} warning(s)", report.warnings.len());
            Ok(())
        }
        Err(errors) => {
            for e in &errors {
                println!("{e}");
            }
            Err(format!("{} integrity error(s)", errors.len()))
        }
    }
}

fn run_queries(source: &str, rest: &[String]) -> Result<(), String> {
    let mut network = load(source, rest)?;
    let engine_flag = flag_value(rest, "--engine").unwrap_or("exact");
    let want_stats = has_flag(rest, "--stats");
    let passes = !has_flag(rest, "--no-opt");
    let explain_passes = has_flag(rest, "--explain-passes");
    if explain_passes && !passes {
        return Err("--explain-passes cannot be combined with --no-opt".into());
    }
    let started = Instant::now();

    // `--engine auto` consults the static cost model; `--explain-plan`
    // prints the same estimate for any engine (diagnostics go to stderr so
    // posterior output stays diffable). Planning reads the optimized
    // model's cached pass facts and symmetry signals.
    let plan = (engine_flag == "auto" || has_flag(rest, "--explain-plan")).then(|| {
        if passes {
            plan_model(
                &bayonet::opt::optimize(network.model()),
                &PlannerConfig::default(),
                None,
            )
        } else {
            plan_model(network.model(), &PlannerConfig::default(), None)
        }
    });
    if has_flag(rest, "--explain-plan") {
        eprintln!("{}", plan.as_ref().expect("plan computed above").explain());
    }
    let engine = if engine_flag == "auto" {
        match plan.as_ref().and_then(|p| p.engine()) {
            Some(PlanEngine::Bdd) => "bdd",
            Some(PlanEngine::Smc) => "smc",
            Some(PlanEngine::Enum) => "enum",
            None => {
                return Err(
                    "planner found no feasible engine for this program (see --explain-plan)"
                        .to_string(),
                )
            }
        }
    } else {
        engine_flag
    };

    // An auto-routed SMC run uses the planner's error-bounded particle
    // count; an explicit `--particles` always wins.
    let planned_particles = (engine_flag == "auto")
        .then(|| plan.as_ref().and_then(|p| p.particles))
        .flatten();
    let particles = flag_value(rest, "--particles")
        .map(|v| v.parse::<usize>().map_err(|e| e.to_string()))
        .transpose()?
        .or(planned_particles)
        .unwrap_or(1000);
    let seed = flag_value(rest, "--seed")
        .map(|v| v.parse::<u64>().map_err(|e| e.to_string()))
        .transpose()?
        .unwrap_or(0);
    let approx = ApproxOptions {
        particles,
        seed,
        ..Default::default()
    };

    let threads = flag_value(rest, "--threads")
        .map(|v| match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            Ok(_) => Err("bad --threads value: must be at least 1".to_string()),
            Err(e) => Err(format!("bad --threads value: {e}")),
        })
        .transpose()?
        .unwrap_or(1);
    if threads > 1 && engine_flag != "auto" && !matches!(engine, "exact" | "enum") {
        // The diagram backend is single-threaded by design; erroring beats
        // silently ignoring the flag. `auto` is exempt: the planner may
        // route anywhere, and the pool simply goes unused off the
        // enumeration path.
        return Err(format!(
            "--threads only applies to the exact enumeration engine, not `{engine}`"
        ));
    }

    // The exact family runs the optimized model; sampling/psi engines run
    // the original (pass rewrites change the draw sequence for a fixed
    // seed), so for them `--explain-passes` reports on a throwaway copy.
    let exact_family = matches!(engine, "exact" | "enum" | "bdd");
    let pass_report = (passes && exact_family).then(|| network.optimize().clone());
    if explain_passes {
        match &pass_report {
            Some(report) => eprint!("{}", report.explain(&network.model().node_names)),
            None => {
                let optimized = bayonet::opt::optimize(network.model());
                let info = optimized.opt_info().expect("optimize attaches a report");
                eprint!("{}", info.report.explain(&optimized.node_names));
            }
        }
    }

    match engine {
        "exact" | "enum" | "bdd" => {
            let opts = ExactOptions {
                threads,
                passes,
                engine: if engine == "bdd" {
                    EngineKind::Bdd
                } else {
                    EngineKind::Enum
                },
                ..ExactOptions::default()
            };
            let report = network.exact_with(&opts).map_err(|e| e.to_string())?;
            for result in &report.results {
                print!("{result}");
            }
            println!(
                "Z = {} (discarded by observations: {})",
                report.z, report.discarded
            );
            println!(
                "[{} steps, {} expansions, peak {} configs, {} merge hits]",
                report.stats.steps,
                report.stats.expansions,
                report.stats.peak_configs,
                report.stats.merge_hits
            );
            if want_stats {
                eprintln!(
                    "stats: {} states expanded, {} merged, terminal mass {}, \
                     feasibility cache {} hits / {} misses, {:.1} ms wall",
                    report.stats.expansions,
                    report.stats.merge_hits,
                    report.z,
                    report.stats.feasibility_hits,
                    report.stats.feasibility_misses,
                    started.elapsed().as_secs_f64() * 1000.0
                );
                if engine == "bdd" {
                    eprintln!(
                        "stats: bdd {} nodes, {} unique-table hits, {} apply-cache hits",
                        report.stats.bdd_nodes,
                        report.stats.bdd_unique_hits,
                        report.stats.bdd_apply_cache_hits
                    );
                }
                if let Some(pr) = &pass_report {
                    eprintln!(
                        "stats: opt {} pass runs, {} flips eliminated, {} guards folded, \
                         group order {}, {} orbit merges",
                        pr.pass_runs,
                        pr.flips_eliminated,
                        pr.guards_folded,
                        pr.group_order,
                        report.stats.orbit_merges
                    );
                }
            }
        }
        "smc" | "rejection" => {
            for idx in 0..network.queries().len() {
                let est = if engine == "smc" {
                    network.smc(idx, &approx)
                } else {
                    network.rejection(idx, &approx)
                }
                .map_err(|e| e.to_string())?;
                println!(
                    "{}: {est}  (Ẑ ≈ {:.4})",
                    network.queries()[idx].source,
                    est.z_estimate
                );
            }
        }
        "simulate" => {
            let sim = network.simulate(&approx).map_err(|e| e.to_string())?;
            print!("{}", sim.render(network.model()));
        }
        "psi" => {
            for idx in 0..network.queries().len() {
                let value = network.infer_via_psi(idx).map_err(|e| e.to_string())?;
                println!(
                    "{}: {value} ≈ {:.4}",
                    network.queries()[idx].source,
                    value.to_f64()
                );
            }
        }
        other => return Err(format!("unknown engine `{other}`\n{}", usage())),
    }
    if want_stats && !matches!(engine, "exact" | "enum" | "bdd") {
        eprintln!(
            "stats: {:.1} ms wall",
            started.elapsed().as_secs_f64() * 1000.0
        );
    }
    Ok(())
}

/// `bayonet run <file.json> --batch`: the file is a `/v1/batch` request
/// body, not a program. Items run through the same orchestration as the
/// server (shared-source compile amortization, pool fan-out, per-item
/// errors) and the NDJSON frames are printed to stdout sorted by item
/// index, so output is deterministic and diffable against server runs.
fn run_batch_cmd(source: &str, rest: &[String]) -> Result<(), String> {
    for flag in [
        "--engine",
        "--particles",
        "--seed",
        "--scheduler",
        "--bind",
        "--stats",
        "--explain-plan",
        "--no-opt",
        "--explain-passes",
    ] {
        if has_flag(rest, flag) {
            return Err(format!(
                "{flag} cannot be combined with --batch; set it per item in the batch file"
            ));
        }
    }
    let threads = flag_value(rest, "--threads")
        .map(|v| match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            Ok(_) => Err("bad --threads value: must be at least 1".to_string()),
            Err(e) => Err(format!("bad --threads value: {e}")),
        })
        .transpose()?
        .unwrap_or(1);

    let service = bayonet_serve::Service::with_options(bayonet_serve::ServiceOptions {
        cache_entries: bayonet_serve::DEFAULT_CACHE_ENTRIES,
        pool: (threads > 1).then(|| bayonet::ComputePool::new(threads)),
        persist: None,
    })
    .map_err(|e| format!("cannot build batch service: {e}"))?;
    let request = bayonet_serve::Request {
        method: "POST".into(),
        path: "/v1/batch".into(),
        headers: Vec::new(),
        body: source.as_bytes().to_vec(),
    };
    let response = service.handle(&request);
    let body = String::from_utf8_lossy(&response.body).into_owned();
    if response.status != 200 {
        return Err(format!("batch rejected ({}): {body}", response.status));
    }
    print!("{body}");
    let failed = body
        .lines()
        .filter_map(|line| bayonet_serve::parse_json(line).ok())
        .filter(|doc| doc.get("status").and_then(|s| s.as_u64()) != Some(200))
        .count();
    if failed > 0 {
        let total = body.lines().count();
        return Err(format!("{failed} of {total} batch item(s) failed"));
    }
    Ok(())
}

/// `bayonet run <file.bay> --sweep <grid.json>`: sweeps the program across
/// a parameter grid (the file maps parameter names to value arrays, e.g.
/// `{"K": [1, 2, 3, 4]}`) through the same `/v1/sweep` orchestration as
/// the server, sharing exploration work across grid points. One NDJSON
/// frame per point is printed to stdout in row-major grid order; each
/// frame's `body` is the answer an independent `run --bind` of that point
/// would produce.
fn run_sweep_cmd(source: &str, grid_file: &str, rest: &[String]) -> Result<(), String> {
    for flag in [
        "--particles",
        "--seed",
        "--scheduler",
        "--stats",
        "--explain-plan",
        "--explain-passes",
    ] {
        if has_flag(rest, flag) {
            return Err(format!("{flag} cannot be combined with --sweep"));
        }
    }
    let grid_text = std::fs::read_to_string(grid_file)
        .map_err(|e| format!("cannot read sweep grid {grid_file}: {e}"))?;
    let grid = bayonet_serve::parse_json(&grid_text)
        .map_err(|e| format!("bad sweep grid {grid_file}: {e}"))?;
    let threads = flag_value(rest, "--threads")
        .map(|v| match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            Ok(_) => Err("bad --threads value: must be at least 1".to_string()),
            Err(e) => Err(format!("bad --threads value: {e}")),
        })
        .transpose()?
        .unwrap_or(1);

    let mut fields = vec![
        ("source", bayonet_serve::Json::Str(source.to_string())),
        ("sweep", grid),
    ];
    if let Some(engine) = flag_value(rest, "--engine") {
        fields.push(("engine", bayonet_serve::Json::Str(engine.to_string())));
    }
    if has_flag(rest, "--no-opt") {
        fields.push(("passes", bayonet_serve::Json::Bool(false)));
    }
    // --bind NAME=VALUE (repeatable) become the fixed (non-swept) bindings.
    let mut bindings = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        if rest[i] == "--bind" {
            let spec = rest
                .get(i + 1)
                .ok_or_else(|| "--bind needs NAME=VALUE".to_string())?;
            let (name, value) = spec
                .split_once('=')
                .ok_or_else(|| format!("malformed --bind `{spec}` (want NAME=VALUE)"))?;
            bindings.push((
                name.to_string(),
                bayonet_serve::Json::Str(value.to_string()),
            ));
            i += 2;
        } else {
            i += 1;
        }
    }
    if !bindings.is_empty() {
        fields.push(("bindings", bayonet_serve::Json::Obj(bindings)));
    }
    if threads > 1 {
        fields.push(("threads", bayonet_serve::Json::Num(threads as f64)));
    }

    let service = bayonet_serve::Service::with_options(bayonet_serve::ServiceOptions {
        cache_entries: bayonet_serve::DEFAULT_CACHE_ENTRIES,
        pool: (threads > 1).then(|| bayonet::ComputePool::new(threads)),
        persist: None,
    })
    .map_err(|e| format!("cannot build sweep service: {e}"))?;
    let request = bayonet_serve::Request {
        method: "POST".into(),
        path: "/v1/sweep".into(),
        headers: Vec::new(),
        body: bayonet_serve::Json::obj(fields).to_string().into_bytes(),
    };
    let response = service.handle(&request);
    let body = String::from_utf8_lossy(&response.body).into_owned();
    if response.status != 200 {
        return Err(format!("sweep rejected ({}): {body}", response.status));
    }
    print!("{body}");
    let failed = body
        .lines()
        .filter_map(|line| bayonet_serve::parse_json(line).ok())
        .filter(|doc| doc.get("status").and_then(|s| s.as_u64()) != Some(200))
        .count();
    if failed > 0 {
        let total = body.lines().count();
        return Err(format!("{failed} of {total} sweep point(s) failed"));
    }
    Ok(())
}

fn serve_cmd(rest: &[String]) -> Result<(), String> {
    validate_flags(rest, SERVE_FLAGS)?;
    let mut config = bayonet_serve::ServerConfig::default();
    if let Some(addr) = flag_value(rest, "--addr") {
        config.addr = addr.to_string();
    }
    if let Some(threads) = flag_value(rest, "--threads") {
        config.threads = threads
            .parse()
            .map_err(|e| format!("bad --threads value: {e}"))?;
    }
    if let Some(entries) = flag_value(rest, "--cache-entries") {
        config.cache_entries = entries
            .parse()
            .map_err(|e| format!("bad --cache-entries value: {e}"))?;
    }
    if let Some(dir) = flag_value(rest, "--cache-dir") {
        config.cache_dir = Some(dir.into());
    }
    if let Some(max) = flag_value(rest, "--cache-max-bytes") {
        config.cache_max_bytes = max
            .parse()
            .map_err(|e| format!("bad --cache-max-bytes value: {e}"))?;
    }
    if let Some(replicas) = flag_value(rest, "--replicas") {
        config.replicas = replicas
            .parse()
            .map_err(|e| format!("bad --replicas value: {e}"))?;
        if config.replicas == 0 {
            return Err("--replicas must be at least 1".to_string());
        }
    }
    if let Some(max) = flag_value(rest, "--max-connections") {
        config.max_connections = max
            .parse()
            .map_err(|e| format!("bad --max-connections value: {e}"))?;
    }
    let replicas = config.replicas;
    let handle = bayonet_serve::start(config).map_err(|e| format!("cannot start server: {e}"))?;
    if replicas > 1 {
        eprintln!(
            "bayonet-serve router on http://{} ({replicas} replicas)",
            handle.addr()
        );
    } else {
        eprintln!("bayonet-serve listening on http://{}", handle.addr());
    }
    handle.join();
    Ok(())
}

fn synthesize_cmd(source: &str, rest: &[String]) -> Result<(), String> {
    let network = load(source, rest)?;
    let query = flag_value(rest, "--query")
        .map(|v| v.parse::<usize>().map_err(|e| e.to_string()))
        .transpose()?
        .unwrap_or(0);
    let opts = SynthesisOptions {
        objective: if has_flag(rest, "--maximize") {
            Objective::Maximize
        } else {
            Objective::Minimize
        },
        positive_params: !has_flag(rest, "--allow-zero-params"),
    };
    let synthesis = synthesize_with(&network, query, opts).map_err(|e| e.to_string())?;
    println!("piecewise result:");
    for (i, cell) in synthesis.result.cells.iter().enumerate() {
        let marker = if i == synthesis.best_cell { "*" } else { " " };
        let value = cell
            .value
            .as_ref()
            .map(|v| format!("{v}"))
            .unwrap_or_else(|| "undefined".into());
        println!("{marker} [{}] {value}", cell.constraint);
    }
    println!(
        "optimal value: {} ≈ {:.4}",
        synthesis.value,
        synthesis.value.to_f64()
    );
    println!("constraint:    {}", synthesis.constraint);
    print!("witness:      ");
    for (pid, v) in &synthesis.assignment {
        print!(" {} = {v}", network.model().params.name(*pid));
    }
    println!();
    Ok(())
}

fn codegen(source: &str, rest: &[String]) -> Result<(), String> {
    let network = load(source, &[])?;
    match flag_value(rest, "--target").unwrap_or("psi") {
        "psi" => print!("{}", network.to_psi()),
        "webppl" => print!("{}", network.to_webppl()),
        other => return Err(format!("unknown codegen target `{other}`")),
    }
    Ok(())
}
