//! Unit tests of the Bayonet → PSI-core translation (structure and edge
//! cases; agreement with the direct engine is covered in differential.rs).

use bayonet_lang::parse;
use bayonet_net::{compile, Model, QueryKind};
use bayonet_num::Rat;
use bayonet_psi::{
    infer_exact, infer_query, translate, PValue, TranslateError, DEFAULT_STEP_LIMIT,
};

fn model(src: &str) -> Model {
    compile(&parse(src).unwrap()).unwrap()
}

const COIN: &str = r#"
    packet_fields { dst }
    topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
    programs { A -> send, B -> recv }
    init { packet -> (A, pt1); }
    query probability(got@B == 1);
    def send(pkt, pt) { if flip(1/3) { fwd(1); } else { drop; } }
    def recv(pkt, pt) state got(0) { got = 1; drop; }
"#;

#[test]
fn translated_program_has_named_globals() {
    let m = model(COIN);
    let p = translate(&m, &m.queries[0]).unwrap();
    // Per-node queues, error flags, state variables all present by name.
    for expected in [
        "Q_in_A",
        "Q_out_A",
        "err_A",
        "Q_in_B",
        "B_got",
        "terminated",
        "actions",
    ] {
        assert!(
            p.global_names.iter().any(|n| n == expected),
            "missing global {expected}: {:?}",
            p.global_names
        );
    }
    assert_eq!(p.global_names.len(), p.init.len());
}

#[test]
fn translated_posterior_is_a_pair_of_error_flag_and_value() {
    let m = model(COIN);
    let p = translate(&m, &m.queries[0]).unwrap();
    let posterior = infer_exact(&p, DEFAULT_STEP_LIMIT).unwrap();
    assert_eq!(posterior.discarded, Rat::zero());
    for (v, _) in &posterior.support {
        let PValue::Tuple(items) = v else {
            panic!("network result must be a pair, got {v:?}")
        };
        assert_eq!(items.len(), 2);
    }
    assert_eq!(
        infer_query(&p, QueryKind::Probability, DEFAULT_STEP_LIMIT).unwrap(),
        Rat::ratio(1, 3)
    );
}

#[test]
fn unbound_parameters_are_rejected() {
    let src = COIN.replace("flip(1/3)", "flip(P)").replace(
        "packet_fields { dst }",
        "packet_fields { dst } parameters { P }",
    );
    let m = model(&src);
    let err = translate(&m, &m.queries[0]).unwrap_err();
    assert!(matches!(err, TranslateError::UnboundParameter(p) if p == "P"));
}

#[test]
fn bound_parameters_fold_to_constants() {
    let src = COIN.replace("flip(1/3)", "flip(P)").replace(
        "packet_fields { dst }",
        "packet_fields { dst } parameters { P }",
    );
    let mut m = model(&src);
    m.bind_param("P", Rat::ratio(1, 5)).unwrap();
    let p = translate(&m, &m.queries[0]).unwrap();
    assert_eq!(
        infer_query(&p, QueryKind::Probability, DEFAULT_STEP_LIMIT).unwrap(),
        Rat::ratio(1, 5)
    );
}

#[test]
fn random_state_initializers_translate() {
    // `state coin(flip(1/4))` becomes constructor statements at the top of
    // the body (the paper's constructor step).
    let src = r#"
        packet_fields { dst }
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> a, B -> b }
        init { packet -> (A, pt1); }
        query probability(coin@A == 1);
        def a(pkt, pt) state coin(flip(1/4)) { drop; }
        def b(pkt, pt) { drop; }
    "#;
    let m = model(src);
    let p = translate(&m, &m.queries[0]).unwrap();
    assert_eq!(
        infer_query(&p, QueryKind::Probability, DEFAULT_STEP_LIMIT).unwrap(),
        Rat::ratio(1, 4)
    );
}

#[test]
fn num_steps_too_small_traps_like_assert_terminated() {
    let src = COIN.replace(
        "packet_fields { dst }",
        "packet_fields { dst } num_steps 1;",
    );
    let m = model(&src);
    let p = translate(&m, &m.queries[0]).unwrap();
    // Figure 10's assert(terminated()) is preserved: the translated program
    // raises a hard error when the bound is insufficient.
    assert!(infer_exact(&p, DEFAULT_STEP_LIMIT).is_err());
}

#[test]
fn weighted_scheduler_is_rejected_by_this_backend() {
    let src = COIN.replace(
        "packet_fields { dst }",
        "packet_fields { dst } scheduler weighted { A -> 2, B -> 1 };",
    );
    let m = model(&src);
    assert!(matches!(
        translate(&m, &m.queries[0]),
        Err(TranslateError::Unsupported(_))
    ));
}

#[test]
fn generated_psi_text_golden_structure() {
    let m = model(COIN);
    let text = bayonet_psi::to_psi(&m);
    // Figure 9/10 structure, in order.
    let order = [
        "dat send",
        "def run()",
        "dat recv",
        "dat Network",
        "def scheduler()",
        "def step()",
        "def terminated()",
        "def main()",
        "assert(terminated())",
    ];
    let mut pos = 0;
    for needle in order {
        let at = text[pos..]
            .find(needle)
            .unwrap_or_else(|| panic!("missing `{needle}` after byte {pos} in:\n{text}"));
        pos += at;
    }
}
