//! Request routing and inference execution.
//!
//! The [`Service`] is the transport-independent core of the server: it maps
//! one parsed HTTP [`Request`] to a [`Response`], running the same
//! parse → check → compile → infer pipeline as the `bayonet` CLI. Exact
//! results carry a `text` field rendered **byte-for-byte identically** to
//! `bayonet run` stdout, so clients (and tests) can diff the two directly.
//!
//! Successful inference responses are cached in an LRU keyed by a hash of
//! the canonically pretty-printed program, the engine, the query selection,
//! the engine options, and the sorted parameter bindings — so textually
//! different but structurally identical requests share cache entries. The
//! deadline and the `threads` hint are deliberately left out of the key: a
//! successful result is valid regardless of the budget that produced it,
//! parallel runs are bit-identical to single-threaded ones, and error
//! responses (including timeouts) are never cached.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bayonet_approx::{rejection, smc, ApproxError, ApproxOptions, Estimate};
use bayonet_exact::{
    analyze, answer_cached, plan_model, synthesize_result, ComputePool, EngineKind, ExactError,
    ExactOptions, FeasibilityCache, Objective, Plan, PlanDecision, PlanEngine, PlannerConfig,
    QueryResult, SweepResult, SynthesisOptions,
};
use bayonet_lang::{check, parse, pretty_program, Program};
use bayonet_net::opt::optimize;
use bayonet_net::{compile, scheduler_for, Deadline, Model, Scheduler};
use bayonet_num::Rat;

use crate::cache::LruCache;
use crate::http::{ChunkedWriter, Request, Response};
use crate::json::{self, Json};
use crate::metrics::Metrics;
use crate::persist::{PersistConfig, PersistentStore};

/// Default result-cache capacity (entries).
pub const DEFAULT_CACHE_ENTRIES: usize = 128;

/// Largest accepted `items` array in a `/v1/batch` request. The cap keeps
/// one hostile or confused client from parking an unbounded amount of work
/// behind a single connection; bigger workloads split into several batches.
pub const MAX_BATCH_ITEMS: usize = 256;

/// Largest accepted parameter-sweep grid (cartesian-product points) in a
/// `/v1/sweep` request — the same resource argument as [`MAX_BATCH_ITEMS`],
/// scaled up because grid points share one compile and most engine work.
pub const MAX_SWEEP_POINTS: usize = 1024;

/// Largest per-request `threads` value accepted before server-side
/// clamping; anything above this is a client error rather than a hint.
pub const MAX_REQUEST_THREADS: u64 = 64;

/// Largest accepted `timeout_ms`; uncapped deadlines are expressed by
/// omitting the field.
pub const MAX_TIMEOUT_MS: u64 = 600_000;

/// Everything [`Service::with_options`] needs to build a service.
#[derive(Default)]
pub struct ServiceOptions {
    /// Result-cache capacity in entries (0 disables caching *and*
    /// persistence).
    pub cache_entries: usize,
    /// Shared compute pool for parallel exact expansion; `None` keeps
    /// every request single-threaded regardless of its `threads` hint.
    pub pool: Option<ComputePool>,
    /// On-disk persistence for the result cache; `None` keeps it
    /// memory-only.
    pub persist: Option<PersistConfig>,
}

/// The transport-independent request handler shared by all workers.
pub struct Service {
    metrics: Arc<Metrics>,
    cache: Arc<Mutex<LruCache<u64, Response>>>,
    /// Shared compute pool for parallel exact expansion; `None` keeps every
    /// request single-threaded regardless of its `threads` hint.
    pool: Option<ComputePool>,
    /// Write-behind persistence for cached responses; dropped last-ish so
    /// a graceful shutdown flushes queued appends.
    persist: Option<PersistentStore>,
}

impl Service {
    /// Creates a service with a result cache of `cache_entries` entries
    /// (0 disables caching) and no compute pool: every request runs
    /// single-threaded.
    pub fn new(cache_entries: usize) -> Service {
        Service::with_options(ServiceOptions {
            cache_entries,
            ..ServiceOptions::default()
        })
        .expect("no persistence requested, so construction cannot fail")
    }

    /// Creates a service that leases workers for parallel exact expansion
    /// from `pool`. The pool's occupancy and steal counters are exported
    /// through `/metrics`.
    pub fn with_pool(cache_entries: usize, pool: ComputePool) -> Service {
        Service::with_options(ServiceOptions {
            cache_entries,
            pool: Some(pool),
            ..ServiceOptions::default()
        })
        .expect("no persistence requested, so construction cannot fail")
    }

    /// Creates a fully configured service. With [`ServiceOptions::persist`]
    /// set, surviving records are warm-loaded into the LRU before the
    /// first request and every subsequent cached response is appended
    /// (write-behind) to the segment file.
    ///
    /// # Errors
    ///
    /// Fails only if the persistence directory or segment file cannot be
    /// created/opened. Corrupt segment *contents* never fail construction;
    /// they are skipped and counted (`bayonet_cache_persist_load_corrupt_total`).
    pub fn with_options(opts: ServiceOptions) -> io::Result<Service> {
        let metrics = Arc::new(Metrics::new());
        let cache: Arc<Mutex<LruCache<u64, Response>>> =
            Arc::new(Mutex::new(LruCache::new(opts.cache_entries)));
        let persist = match &opts.persist {
            Some(cfg) if opts.cache_entries > 0 => {
                let snapshot_cache = Arc::clone(&cache);
                let (store, loaded) = PersistentStore::open(
                    cfg,
                    Box::new(move || {
                        snapshot_cache
                            .lock()
                            .expect("cache mutex")
                            .iter_lru_to_mru()
                            .map(|(key, resp)| (*key, resp.body.clone()))
                            .collect()
                    }),
                )?;
                {
                    let mut c = cache.lock().expect("cache mutex");
                    // File order is oldest-first, so sequential insertion
                    // reproduces the pre-restart recency order.
                    for (key, body) in loaded {
                        c.insert(key, Response::json(200, body));
                    }
                    metrics.set_cache_evictions(c.evictions());
                }
                metrics.bind_persist(store.counters());
                Some(store)
            }
            _ => None,
        };
        if let Some(pool) = &opts.pool {
            metrics.bind_pool(pool.clone());
        }
        Ok(Service {
            metrics,
            cache,
            pool: opts.pool,
            persist,
        })
    }

    /// Exact-engine options for one request: the per-request `threads` hint
    /// (clamped to the pool capacity) plus the shared pool handle. The
    /// deadline is passed in rather than read off the request so batch
    /// items can substitute their batch-clamped deadline.
    fn exact_options(&self, req: &InferenceRequest, deadline: Deadline) -> ExactOptions {
        let requested = req.threads.unwrap_or(1);
        let threads = match &self.pool {
            Some(pool) => requested.min(pool.capacity()),
            None => 1,
        };
        ExactOptions {
            deadline,
            threads,
            pool: self.pool.clone(),
            passes: req.passes,
            ..ExactOptions::default()
        }
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Handles one request, recording request metrics.
    pub fn handle(&self, req: &Request) -> Response {
        let started = Instant::now();
        let endpoint = normalize_endpoint(&req.path);
        let response = self.route(req);
        self.metrics
            .record_request(endpoint, response.status, started.elapsed());
        response
    }

    fn route(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => Response::json(200, r#"{"status":"ok"}"#),
            ("GET", "/metrics") => Response::text(200, self.metrics.render())
                .with_content_type("text/plain; version=0.0.4; charset=utf-8"),
            ("POST", "/v1/check") | ("POST", "/v1/run") | ("POST", "/v1/synthesize") => {
                match self.inference(req) {
                    Ok(resp) => resp,
                    Err(e) => e.into_response(),
                }
            }
            ("POST", "/v1/batch") => self.batch_endpoint(req),
            ("POST", "/v1/sweep") => self.sweep_endpoint(req),
            ("GET", "/v1/check" | "/v1/run" | "/v1/synthesize" | "/v1/batch" | "/v1/sweep")
            | ("POST", "/healthz" | "/metrics") => ApiError {
                status: 405,
                kind: "method_not_allowed",
                message: format!("{} does not support {}", req.path, req.method),
                field: None,
            }
            .into_response(),
            _ => ApiError {
                status: 404,
                kind: "not_found",
                message: format!("no such endpoint: {}", req.path),
                field: None,
            }
            .into_response(),
        }
    }

    fn inference(&self, req: &Request) -> Result<Response, ApiError> {
        let mut parsed = InferenceRequest::from_http(req)?;

        // Canonical cache key: pretty-printed program, not raw source, so
        // formatting differences still hit.
        let program = parse(&parsed.source).map_err(|e| ApiError {
            status: 422,
            kind: "parse_error",
            message: e.to_string(),
            field: None,
        })?;
        let canonical = pretty_program(&program);

        // `"engine": "auto"` resolves to a concrete engine *before* the
        // cache key is computed, so a planner-routed result and the same
        // request with the chosen engine spelled out share one cache entry
        // — and an infeasible deadline is rejected before any engine work.
        let mut prebuilt: Option<(Model, Box<dyn Scheduler>)> = None;
        let mut plan: Option<Plan> = None;
        if parsed.engine == Engine::Auto {
            if req.path == "/v1/run" {
                let (model, scheduler) = parsed.build_model()?;
                // Plan against the optimized model: the cost model reads
                // the cached pass facts and symmetry signals. The optimized
                // model is kept only for exact routes — sampling engines
                // run the original (see `run_engine`).
                let optimized = parsed.passes.then(|| optimize(&model));
                let budget = parsed.timeout_ms.map(Duration::from_millis);
                match self.plan_auto(&mut parsed, optimized.as_ref().unwrap_or(&model), budget) {
                    Ok(p) => plan = Some(p),
                    Err(rejection) => return Ok(rejection),
                }
                let exact_route = matches!(parsed.engine, Engine::Exact | Engine::Bdd);
                let chosen = match (optimized, exact_route) {
                    (Some(opt), true) => opt,
                    _ => model,
                };
                prebuilt = Some((chosen, scheduler));
            } else {
                // `/v1/check` never runs an engine and `/v1/synthesize`
                // always runs the exact enumeration core, so auto resolves
                // to the same key the default request would use.
                parsed.engine = Engine::Exact;
            }
        }
        let key = parsed.cache_key(&req.path, &canonical);

        if let Some(hit) = self.cache.lock().expect("cache mutex").get(&key).cloned() {
            self.metrics.record_cache(true);
            return Ok(hit);
        }
        self.metrics.record_cache(false);

        let response = match req.path.as_str() {
            "/v1/check" => self.check_endpoint(&parsed)?,
            "/v1/run" => self.run_endpoint(&parsed, prebuilt, plan.as_ref())?,
            "/v1/synthesize" => self.synthesize_endpoint(&parsed)?,
            _ => unreachable!("routed"),
        };
        if response.status == 200 {
            let evictions = {
                let mut cache = self.cache.lock().expect("cache mutex");
                cache.insert(key, response.clone());
                cache.evictions()
            };
            self.metrics.set_cache_evictions(evictions);
            if let Some(store) = &self.persist {
                store.append(key, response.body.clone());
            }
        }
        Ok(response)
    }

    fn check_endpoint(&self, req: &InferenceRequest) -> Result<Response, ApiError> {
        let program = parse(&req.source).expect("parsed once already");
        match check(&program) {
            Ok(report) => {
                let mut text = String::new();
                for w in &report.warnings {
                    let _ = writeln!(text, "warning: {}", w.message);
                }
                let _ = writeln!(text, "ok: {} warning(s)", report.warnings.len());
                let warnings = report
                    .warnings
                    .iter()
                    .map(|w| Json::Str(w.message.clone()))
                    .collect();
                Ok(Response::json(
                    200,
                    Json::obj(vec![
                        ("ok", Json::Bool(true)),
                        ("warnings", Json::Arr(warnings)),
                        ("text", Json::Str(text)),
                    ])
                    .to_string(),
                ))
            }
            Err(errors) => {
                let details = errors.iter().map(|e| Json::Str(e.to_string())).collect();
                Ok(Response::json(
                    422,
                    Json::obj(vec![
                        ("ok", Json::Bool(false)),
                        (
                            "error",
                            Json::obj(vec![
                                ("kind", Json::Str("check_error".into())),
                                (
                                    "message",
                                    Json::Str(format!("{} integrity error(s)", errors.len())),
                                ),
                                ("details", Json::Arr(details)),
                            ]),
                        ),
                    ])
                    .to_string(),
                ))
            }
        }
    }

    fn run_endpoint(
        &self,
        req: &InferenceRequest,
        prebuilt: Option<(Model, Box<dyn Scheduler>)>,
        plan: Option<&Plan>,
    ) -> Result<Response, ApiError> {
        let (model, scheduler) = match prebuilt {
            // Auto routing already compiled the model to plan against.
            Some(built) => built,
            None => req.build_model()?,
        };
        self.run_with_model(req, &model, &*scheduler, req.deadline(), plan)
    }

    /// Routes a request whose `engine` is `auto` through the static cost
    /// model: rewrites `req.engine` (and, for the SMC route, an absent
    /// `particles`) so the cache key and the response are identical to an
    /// explicit request for the chosen engine. Infeasible budgets return
    /// the structured 422 as a ready [`Response`] — no engine work has
    /// happened yet by design.
    fn plan_auto(
        &self,
        req: &mut InferenceRequest,
        model: &Model,
        budget: Option<Duration>,
    ) -> Result<Plan, Response> {
        let plan = plan_model(model, &PlannerConfig::default(), budget);
        match plan.decision {
            PlanDecision::Run(engine) => {
                req.engine = match engine {
                    PlanEngine::Enum => Engine::Exact,
                    PlanEngine::Bdd => Engine::Bdd,
                    PlanEngine::Smc => Engine::Smc,
                };
                if engine == PlanEngine::Smc && req.particles.is_none() {
                    // The error-bounded particle count, written into the
                    // request so the cache key matches an explicit
                    // `{"engine":"smc","particles":N}` call.
                    req.particles = plan.particles;
                }
                self.metrics.record_planner_decision(req.engine.name());
                Ok(plan)
            }
            PlanDecision::Infeasible { needed_ns } => {
                self.metrics.record_planner_rejection();
                Err(infeasible_response(&plan, needed_ns))
            }
        }
    }

    /// Runs the `/v1/run` engine dispatch against an already compiled
    /// model. The batch endpoint calls this directly with a clone of a
    /// shared compiled model and a batch-clamped deadline. With `plan` set
    /// (planner-routed requests) the run is timed and the actual/predicted
    /// cost ratio folded into `bayonet_planner_cost_ratio`.
    fn run_with_model(
        &self,
        req: &InferenceRequest,
        model: &Model,
        scheduler: &dyn Scheduler,
        deadline: Deadline,
        plan: Option<&Plan>,
    ) -> Result<Response, ApiError> {
        let started = Instant::now();
        let result = self.run_engine(req, model, scheduler, deadline);
        if let Some(plan) = plan {
            if matches!(&result, Ok(resp) if resp.status == 200) {
                let actual_ns = started.elapsed().as_nanos() as f64;
                self.metrics
                    .record_planner_ratio(actual_ns / plan.est_cost_ns.max(1) as f64);
            }
        }
        result
    }

    fn run_engine(
        &self,
        req: &InferenceRequest,
        model: &Model,
        scheduler: &dyn Scheduler,
        deadline: Deadline,
    ) -> Result<Response, ApiError> {
        match req.engine {
            Engine::Exact | Engine::Bdd => {
                // The exact family runs the optimized model unless the
                // request opted out; sampling engines stay unoptimized
                // because pass rewrites change the draw sequence for a
                // fixed seed. Auto-routed requests arrive pre-optimized —
                // `opt_info` makes this idempotent.
                let optimized;
                let model = if req.passes && model.opt_info().is_none() {
                    optimized = optimize(model);
                    &optimized
                } else {
                    model
                };
                if req.passes {
                    if let Some(info) = model.opt_info() {
                        let r = &info.report;
                        self.metrics
                            .record_opt(r.pass_runs, r.flips_eliminated, r.guards_folded);
                    }
                }
                // Per-request feasibility memo table, shared between the
                // analysis and every query answer; its totals feed the
                // metrics aggregates once, below.
                let cache = Arc::new(FeasibilityCache::new());
                let mut opts = self.exact_options(req, deadline);
                if req.engine == Engine::Bdd {
                    opts.engine = EngineKind::Bdd;
                }
                opts.feasibility_cache = Some(Arc::clone(&cache));
                let analysis = analyze(model, scheduler, &opts).map_err(exact_error)?;
                self.metrics.record_engine(&analysis.stats);
                let mut results: Vec<QueryResult> = Vec::with_capacity(model.queries.len());
                for q in &model.queries {
                    results.push(
                        answer_cached(model, &analysis, q, opts.fm_pruning, Some(&cache))
                            .map_err(exact_error)?,
                    );
                }
                let (feas_hits, feas_misses) = cache.counts();
                self.metrics.record_feasibility(feas_hits, feas_misses);
                let z = analysis.total_terminal_mass();
                let discarded = analysis.total_discarded_mass();

                // Byte-for-byte the stdout of `bayonet run` with the same
                // engine selection.
                let mut text = String::new();
                for result in &results {
                    let _ = write!(text, "{result}");
                }
                let _ = writeln!(text, "Z = {z} (discarded by observations: {discarded})");
                let _ = writeln!(
                    text,
                    "[{} steps, {} expansions, peak {} configs, {} merge hits]",
                    analysis.stats.steps,
                    analysis.stats.expansions,
                    analysis.stats.peak_configs,
                    analysis.stats.merge_hits
                );

                let results_json = results.iter().map(query_result_json).collect();
                Ok(Response::json(
                    200,
                    Json::obj(vec![
                        ("ok", Json::Bool(true)),
                        ("engine", Json::Str(req.engine.name().into())),
                        ("results", Json::Arr(results_json)),
                        ("z", Json::Str(z.to_string())),
                        ("discarded", Json::Str(discarded.to_string())),
                        (
                            "stats",
                            Json::obj(vec![
                                ("steps", Json::Num(analysis.stats.steps as f64)),
                                ("expansions", Json::Num(analysis.stats.expansions as f64)),
                                (
                                    "peak_configs",
                                    Json::Num(analysis.stats.peak_configs as f64),
                                ),
                                ("merge_hits", Json::Num(analysis.stats.merge_hits as f64)),
                                (
                                    "terminal_configs",
                                    Json::Num(analysis.stats.terminal_configs as f64),
                                ),
                            ]),
                        ),
                        ("text", Json::Str(text)),
                    ])
                    .to_string(),
                ))
            }
            Engine::Smc | Engine::Rejection => {
                let opts = ApproxOptions {
                    particles: req.particles.unwrap_or(1000),
                    seed: req.seed.unwrap_or(0),
                    deadline,
                    ..ApproxOptions::default()
                };
                let indices: Vec<usize> = match req.query {
                    Some(idx) => {
                        req.check_query_index(idx, model.queries.len())?;
                        vec![idx]
                    }
                    None => (0..model.queries.len()).collect(),
                };
                let mut text = String::new();
                let mut estimates = Vec::new();
                for idx in indices {
                    let q = &model.queries[idx];
                    let est: Estimate = match req.engine {
                        Engine::Smc => smc(model, scheduler, q, &opts),
                        Engine::Rejection => rejection(model, scheduler, q, &opts),
                        Engine::Exact | Engine::Bdd | Engine::Auto => unreachable!(),
                    }
                    .map_err(approx_error)?;
                    // Byte-for-byte the stdout of `bayonet run --engine smc`.
                    let _ = writeln!(text, "{}: {est}  (Ẑ ≈ {:.4})", q.source, est.z_estimate);
                    estimates.push(Json::obj(vec![
                        ("query", Json::Str(q.source.clone())),
                        ("value", Json::Num(est.value)),
                        ("std_error", Json::Num(est.std_error)),
                        ("samples", Json::Num(est.samples as f64)),
                        ("z_estimate", Json::Num(est.z_estimate)),
                    ]));
                }
                Ok(Response::json(
                    200,
                    Json::obj(vec![
                        ("ok", Json::Bool(true)),
                        ("engine", Json::Str(req.engine.name().into())),
                        ("estimates", Json::Arr(estimates)),
                        ("text", Json::Str(text)),
                    ])
                    .to_string(),
                ))
            }
            // Resolved to a concrete engine in `inference` / `batch_item_inner`
            // before any run is dispatched.
            Engine::Auto => unreachable!("auto engine is resolved before dispatch"),
        }
    }

    fn synthesize_endpoint(&self, req: &InferenceRequest) -> Result<Response, ApiError> {
        let (model, scheduler) = req.build_model()?;
        let query_idx = req.query.unwrap_or(0);
        req.check_query_index(query_idx, model.queries.len())?;

        let cache = Arc::new(FeasibilityCache::new());
        let mut opts = self.exact_options(req, req.deadline());
        opts.feasibility_cache = Some(Arc::clone(&cache));
        let analysis = analyze(&model, &*scheduler, &opts).map_err(exact_error)?;
        self.metrics.record_engine(&analysis.stats);
        let result = answer_cached(
            &model,
            &analysis,
            &model.queries[query_idx],
            opts.fm_pruning,
            Some(&cache),
        )
        .map_err(exact_error)?;
        let (feas_hits, feas_misses) = cache.counts();
        self.metrics.record_feasibility(feas_hits, feas_misses);
        let synthesis = synthesize_result(
            &model,
            &result,
            SynthesisOptions {
                objective: if req.maximize {
                    Objective::Maximize
                } else {
                    Objective::Minimize
                },
                positive_params: !req.allow_zero_params,
            },
        )
        .map_err(|e| ApiError {
            status: 422,
            kind: "engine_error",
            message: e.to_string(),
            field: None,
        })?;

        // Byte-for-byte the stdout of `bayonet synthesize`.
        let mut text = String::new();
        let _ = writeln!(text, "piecewise result:");
        let mut cells = Vec::new();
        for (i, cell) in synthesis.result.cells.iter().enumerate() {
            let marker = if i == synthesis.best_cell { "*" } else { " " };
            let value = cell
                .value
                .as_ref()
                .map(|v| format!("{v}"))
                .unwrap_or_else(|| "undefined".into());
            let _ = writeln!(text, "{marker} [{}] {value}", cell.constraint);
            cells.push(Json::obj(vec![
                ("constraint", Json::Str(cell.constraint.clone())),
                (
                    "value",
                    cell.value
                        .as_ref()
                        .map(|v| Json::Str(v.to_string()))
                        .unwrap_or(Json::Null),
                ),
                ("best", Json::Bool(i == synthesis.best_cell)),
            ]));
        }
        let _ = writeln!(
            text,
            "optimal value: {} ≈ {:.4}",
            synthesis.value,
            synthesis.value.to_f64()
        );
        let _ = writeln!(text, "constraint:    {}", synthesis.constraint);
        let _ = write!(text, "witness:      ");
        let mut witness = Vec::new();
        for (pid, v) in &synthesis.assignment {
            let _ = write!(text, " {} = {v}", model.params.name(*pid));
            witness.push((
                model.params.name(*pid).to_string(),
                Json::Str(v.to_string()),
            ));
        }
        text.push('\n');

        Ok(Response::json(
            200,
            Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("best_cell", Json::Num(synthesis.best_cell as f64)),
                ("value", Json::Str(synthesis.value.to_string())),
                ("value_f64", Json::Num(synthesis.value.to_f64())),
                ("constraint", Json::Str(synthesis.constraint.clone())),
                ("witness", Json::Obj(witness)),
                ("cells", Json::Arr(cells)),
                ("text", Json::Str(text)),
            ])
            .to_string(),
        ))
    }

    /// The buffered `/v1/batch` handler used by [`Service::handle`]: runs
    /// the whole batch, then returns one NDJSON body with the frames
    /// sorted by item index. The HTTP server streams instead via
    /// [`Service::handle_batch`]; this path serves in-process callers (the
    /// CLI's `run --batch`, tests) that want deterministic output.
    fn batch_endpoint(&self, req: &Request) -> Response {
        let batch = match BatchRequest::from_http(req) {
            Ok(batch) => batch,
            Err(e) => return e.into_response(),
        };
        let deadline = batch.deadline();
        let frames: Mutex<Vec<(usize, Vec<u8>)>> = Mutex::new(Vec::new());
        let emit = |index: usize, resp: &Response| {
            frames
                .lock()
                .expect("frames mutex")
                .push((index, ndjson_frame(index, resp)));
        };
        let stats = self.run_batch(&batch, &deadline, &emit);
        self.record_batch_stats(&stats);
        let mut frames = frames.into_inner().expect("frames mutex");
        frames.sort_by_key(|(index, _)| *index);
        let mut body = Vec::new();
        for (_, frame) in frames {
            body.extend_from_slice(&frame);
        }
        Response {
            status: 200,
            headers: Vec::new(),
            content_type: "application/x-ndjson",
            body,
        }
    }

    /// The streaming `/v1/batch` handler: validates the batch, then writes
    /// per-item NDJSON frames to `stream` as chunked transfer encoding, in
    /// completion order. Validation errors are written as an ordinary
    /// buffered error response (no chunk is ever emitted before the batch
    /// is known to be well-formed). If the client disconnects mid-stream,
    /// the remaining items are cancelled so engine time is not wasted on an
    /// unreadable response.
    ///
    /// # Errors
    ///
    /// Propagates transport errors, including the client disconnecting
    /// mid-batch.
    pub fn handle_batch<W: Write + Send>(&self, req: &Request, stream: &mut W) -> io::Result<()> {
        let started = Instant::now();
        let batch = match BatchRequest::from_http(req) {
            Ok(batch) => batch,
            Err(e) => {
                let resp = e.into_response();
                self.metrics
                    .record_request("/v1/batch", resp.status, started.elapsed());
                return resp.write_to(stream);
            }
        };
        let mut deadline = batch.deadline();
        let cancel = deadline.cancel_handle();
        let writer = Mutex::new(ChunkedWriter::begin(stream, 200, "application/x-ndjson")?);
        let broken = AtomicBool::new(false);
        let emit = |index: usize, resp: &Response| {
            if broken.load(Ordering::Relaxed) {
                return;
            }
            let frame = ndjson_frame(index, resp);
            let failed = writer
                .lock()
                .expect("chunk writer mutex")
                .chunk(&frame)
                .is_err();
            if failed {
                broken.store(true, Ordering::Relaxed);
                // The client is gone; expire the remaining items instead of
                // burning engine time on frames nobody will read.
                cancel.cancel();
            }
        };
        let stats = self.run_batch(&batch, &deadline, &emit);
        self.metrics
            .record_request("/v1/batch", 200, started.elapsed());
        self.record_batch_stats(&stats);
        if broken.load(Ordering::Relaxed) {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "client disconnected mid-batch",
            ));
        }
        writer.into_inner().expect("chunk writer mutex").finish()
    }

    fn record_batch_stats(&self, stats: &BatchStats) {
        self.metrics.record_batch(
            stats.items,
            stats.item_errors,
            stats.compiles,
            stats.source_reuse,
        );
    }

    /// Runs every batch item, calling `emit` (possibly from several worker
    /// threads, hence `Sync`) with each item's index and `/v1/run`-shaped
    /// response as it completes. Items fan out across lanes leased from the
    /// compute pool; the request's own thread always works as lane zero, so
    /// a fully busy pool degrades to sequential execution instead of
    /// blocking.
    fn run_batch(
        &self,
        batch: &BatchRequest,
        deadline: &Deadline,
        emit: &(dyn Fn(usize, &Response) + Sync),
    ) -> BatchStats {
        // Phase 1 (sequential): compile each distinct source exactly once.
        let prep = self.prepare_sources(batch);

        // Phase 2 (parallel): fan items out over pool lanes.
        let next = AtomicUsize::new(0);
        let item_errors = AtomicU64::new(0);
        let shared_source = batch.shared_source.as_deref();
        let run_lane = || loop {
            let index = next.fetch_add(1, Ordering::Relaxed);
            let Some(item) = batch.items.get(index) else {
                break;
            };
            let resp = self.batch_item(item, shared_source, &prep, deadline);
            if resp.status != 200 {
                item_errors.fetch_add(1, Ordering::Relaxed);
            }
            emit(index, &resp);
        };
        let lease = self
            .pool
            .as_ref()
            .map(|pool| pool.lease(batch.items.len().saturating_sub(1)));
        let extra_lanes = lease.as_ref().map_or(0, |l| l.granted());
        if extra_lanes == 0 {
            run_lane();
        } else {
            let run_lane = &run_lane;
            std::thread::scope(|scope| {
                for _ in 0..extra_lanes {
                    scope.spawn(run_lane);
                }
                run_lane();
            });
        }
        drop(lease);

        let resolvable = batch
            .items
            .iter()
            .filter(|item| item_source(item, shared_source).is_some())
            .count() as u64;
        BatchStats {
            items: batch.items.len() as u64,
            item_errors: item_errors.into_inner(),
            compiles: prep.compiles,
            source_reuse: resolvable.saturating_sub(prep.fresh),
        }
    }

    /// Scans the batch once and parses + checks + compiles each distinct
    /// source exactly one time. Sources that differ only in formatting
    /// share a compile through the canonical pretty-printed form. Failures
    /// are prepared too: every item with a broken source reports the same
    /// structured error without re-parsing.
    fn prepare_sources(&self, batch: &BatchRequest) -> BatchPrep {
        let mut by_source: HashMap<String, Arc<PreparedSource>> = HashMap::new();
        let mut by_canonical: HashMap<String, Arc<PreparedSource>> = HashMap::new();
        let mut compiles = 0u64;
        let mut fresh = 0u64;
        for item in &batch.items {
            let Some(source) = item_source(item, batch.shared_source.as_deref()) else {
                // No resolvable source: the per-item pass reports the same
                // missing-field error `/v1/run` would.
                continue;
            };
            if by_source.contains_key(source) {
                continue;
            }
            let prepared = match parse(source) {
                Err(e) => {
                    fresh += 1;
                    Arc::new(PreparedSource {
                        canonical: String::new(),
                        outcome: Err(ApiError {
                            status: 422,
                            kind: "parse_error",
                            message: e.to_string(),
                            field: None,
                        }),
                    })
                }
                Ok(program) => {
                    let canonical = pretty_program(&program);
                    match by_canonical.get(&canonical) {
                        // Textually different but canonically identical:
                        // reuse the compile.
                        Some(shared) => Arc::clone(shared),
                        None => {
                            fresh += 1;
                            compiles += 1;
                            let prepared = Arc::new(PreparedSource {
                                canonical: canonical.clone(),
                                outcome: check_and_compile(&program),
                            });
                            by_canonical.insert(canonical, Arc::clone(&prepared));
                            prepared
                        }
                    }
                }
            };
            by_source.insert(source.to_string(), prepared);
        }
        BatchPrep {
            by_source,
            compiles,
            fresh,
        }
    }

    /// Runs one batch item to a `/v1/run`-shaped [`Response`] (success or
    /// structured error), never panicking the lane.
    fn batch_item(
        &self,
        item: &Json,
        shared_source: Option<&str>,
        prep: &BatchPrep,
        batch_deadline: &Deadline,
    ) -> Response {
        match self.batch_item_inner(item, shared_source, prep, batch_deadline) {
            Ok(resp) => resp,
            Err(e) => e.into_response(),
        }
    }

    fn batch_item_inner(
        &self,
        item: &Json,
        shared_source: Option<&str>,
        prep: &BatchPrep,
        batch_deadline: &Deadline,
    ) -> Result<Response, ApiError> {
        let mut parsed = InferenceRequest::from_json(item, shared_source)?;
        let prepared = prep
            .by_source
            .get(&parsed.source)
            .expect("every resolvable source was prepared in the scan phase");
        let template = match &prepared.outcome {
            Ok(model) => model,
            Err(e) => return Err(e.clone()),
        };

        let deadline = match parsed.timeout_ms {
            Some(ms) => batch_deadline.clamped(Duration::from_millis(ms)),
            None => batch_deadline.clone(),
        };

        // Auto items plan **per item** — the shared compile is still
        // amortized, but routing is independent: each item's bindings (and
        // its share of the remaining batch budget) can push it to a
        // different engine. Resolution happens before the cache key below,
        // exactly like the single-request path.
        let mut prebuilt: Option<(Model, Box<dyn Scheduler>)> = None;
        let mut plan: Option<Plan> = None;
        if parsed.engine == Engine::Auto {
            let mut model = template.clone();
            apply_bindings(&mut model, &parsed.bindings)?;
            match self.plan_auto(&mut parsed, &model, deadline.remaining()) {
                Ok(p) => plan = Some(p),
                Err(rejection) => return Ok(rejection),
            }
            let scheduler = scheduler_for(&model);
            prebuilt = Some((model, scheduler));
        }

        // Same key as a single `/v1/run` call, so batch items and single
        // runs share cache entries in both directions.
        let key = parsed.cache_key("/v1/run", &prepared.canonical);
        if let Some(hit) = self.cache.lock().expect("cache mutex").get(&key).cloned() {
            self.metrics.record_cache(true);
            return Ok(hit);
        }
        self.metrics.record_cache(false);

        if batch_deadline.expired() {
            return Err(ApiError {
                status: 504,
                kind: "timeout",
                message: "batch budget exhausted before this item started".into(),
                field: None,
            });
        }

        let (model, scheduler) = match prebuilt {
            Some(built) => built,
            None => {
                let mut model = template.clone();
                apply_bindings(&mut model, &parsed.bindings)?;
                let scheduler = scheduler_for(&model);
                (model, scheduler)
            }
        };
        let response =
            self.run_with_model(&parsed, &model, &*scheduler, deadline, plan.as_ref())?;
        if response.status == 200 {
            let evictions = {
                let mut cache = self.cache.lock().expect("cache mutex");
                cache.insert(key, response.clone());
                cache.evictions()
            };
            self.metrics.set_cache_evictions(evictions);
            if let Some(store) = &self.persist {
                store.append(key, response.body.clone());
            }
        }
        Ok(response)
    }

    /// The buffered `/v1/sweep` handler used by [`Service::handle`]: runs
    /// the whole grid, then returns one NDJSON body with one frame per grid
    /// point, in grid (row-major) order. The HTTP server streams the same
    /// frames instead via [`Service::handle_sweep`]; this path serves
    /// in-process callers (the CLI's `run --sweep`, tests).
    fn sweep_endpoint(&self, req: &Request) -> Response {
        let frames = match self.run_sweep(req) {
            Ok(frames) => frames,
            Err(e) => return e.into_response(),
        };
        let mut body = Vec::new();
        for frame in frames {
            body.extend_from_slice(&frame);
        }
        Response {
            status: 200,
            headers: Vec::new(),
            content_type: "application/x-ndjson",
            body,
        }
    }

    /// The streaming `/v1/sweep` handler: validates the request, runs the
    /// sweep (sharing work across grid points), then writes per-point
    /// NDJSON frames to `stream` as chunked transfer encoding. Validation
    /// errors are written as an ordinary buffered error response — no chunk
    /// is emitted before the sweep is known to be well-formed.
    ///
    /// # Errors
    ///
    /// Propagates transport errors, including the client disconnecting
    /// mid-stream.
    pub fn handle_sweep<W: Write + Send>(&self, req: &Request, stream: &mut W) -> io::Result<()> {
        let started = Instant::now();
        match self.run_sweep(req) {
            Err(e) => {
                let resp = e.into_response();
                self.metrics
                    .record_request("/v1/sweep", resp.status, started.elapsed());
                resp.write_to(stream)
            }
            Ok(frames) => {
                self.metrics
                    .record_request("/v1/sweep", 200, started.elapsed());
                let mut writer = ChunkedWriter::begin(stream, 200, "application/x-ndjson")?;
                for frame in &frames {
                    writer.chunk(frame)?;
                }
                writer.finish()
            }
        }
    }

    /// Validates and runs one `/v1/sweep` request to its per-point NDJSON
    /// frames (frame `index` = row-major grid index). The program compiles
    /// once; the exact sweep engine then shares work across grid points —
    /// symbolically (piecewise cells answer every point), via a replayed
    /// exploration prefix, or not at all when nothing is shareable — while
    /// staying bit-identical to independent pointwise runs.
    fn run_sweep(&self, req: &Request) -> Result<Vec<Vec<u8>>, ApiError> {
        let sreq = SweepRequest::from_http(req)?;
        let program = parse(&sreq.source).map_err(|e| ApiError {
            status: 422,
            kind: "parse_error",
            message: e.to_string(),
            field: None,
        })?;
        let canonical = pretty_program(&program);
        let mut model = check_and_compile(&program)?;
        apply_bindings(&mut model, &sreq.bindings)?;
        // Optimize up front (rather than letting the sweep engine do it)
        // so the pass report feeds the metrics registry; the sweep's own
        // hook sees `opt_info` already attached and skips re-running.
        if sreq.passes {
            model = optimize(&model);
            if let Some(info) = model.opt_info() {
                let r = &info.report;
                self.metrics
                    .record_opt(r.pass_runs, r.flips_eliminated, r.guards_folded);
            }
        }

        // Resolve swept names against the declared parameter table before
        // any engine work; a typo'd name is a structured 400, not 16
        // identical per-point errors.
        let mut param_ids = Vec::with_capacity(sreq.sweep.len());
        for (name, _) in &sreq.sweep {
            let id = model
                .params
                .iter()
                .find(|id| model.params.name(*id) == name.as_str())
                .ok_or_else(|| ApiError {
                    status: 400,
                    kind: "bad_request",
                    message: format!(
                        "unknown swept parameter `{name}` (not declared in `parameters {{ ... }}`)"
                    ),
                    field: Some(format!("sweep.{name}")),
                })?;
            param_ids.push(id);
        }
        let points = sreq.points();

        // Per-point cache probe: every point of an all-hit sweep is served
        // from cache with no engine work. A partial hit reruns the whole
        // grid — shared exploration makes skipping individual points a
        // wash — and refreshes every entry.
        let keys: Vec<u64> = points
            .iter()
            .map(|p| sreq.point_key(&canonical, p))
            .collect();
        {
            let mut cache = self.cache.lock().expect("cache mutex");
            let hits: Vec<Response> = keys.iter().filter_map(|k| cache.get(k).cloned()).collect();
            if hits.len() == keys.len() {
                drop(cache);
                self.metrics.record_cache(true);
                self.metrics
                    .record_sweep("cached", points.len() as u64, 0, 0, 0);
                return Ok(hits
                    .iter()
                    .enumerate()
                    .map(|(i, resp)| ndjson_frame(i, resp))
                    .collect());
            }
        }
        self.metrics.record_cache(false);

        let requested = sreq.threads.unwrap_or(1);
        let threads = match &self.pool {
            Some(pool) => requested.min(pool.capacity()),
            None => 1,
        };
        let deadline = match sreq.timeout_ms {
            Some(ms) => Deadline::after(Duration::from_millis(ms)),
            None => Deadline::unlimited(),
        };
        let feas = Arc::new(FeasibilityCache::new());
        let mut opts = ExactOptions {
            deadline,
            threads,
            pool: self.pool.clone(),
            passes: sreq.passes,
            ..ExactOptions::default()
        };
        opts.engine = match sreq.engine {
            Engine::Bdd => EngineKind::Bdd,
            Engine::Auto => EngineKind::Auto,
            _ => EngineKind::Enum,
        };
        opts.feasibility_cache = Some(Arc::clone(&feas));

        let result =
            bayonet_exact::sweep(&model, &param_ids, &points, &opts).map_err(exact_error)?;
        self.metrics.record_engine(&result.prefix_stats);
        let mut frames = Vec::with_capacity(points.len());
        let mut point_errors = 0u64;
        for (i, (point, outcome)) in points.iter().zip(&result.points).enumerate() {
            let resp = match outcome {
                Ok(p) => {
                    // Per-point stats cover only this point's continuation;
                    // the shared prefix was folded in once above, so the
                    // exported expansion totals reflect the actual saving.
                    self.metrics.record_engine(&p.stats);
                    sweep_point_response(&result, &sreq.sweep, point, p)
                }
                Err(e) => {
                    point_errors += 1;
                    exact_error_ref(e).into_response()
                }
            };
            if resp.status == 200 {
                let evictions = {
                    let mut cache = self.cache.lock().expect("cache mutex");
                    cache.insert(keys[i], resp.clone());
                    cache.evictions()
                };
                self.metrics.set_cache_evictions(evictions);
                if let Some(store) = &self.persist {
                    store.append(keys[i], resp.body.clone());
                }
            }
            frames.push(ndjson_frame(i, &resp));
        }
        let (feas_hits, feas_misses) = feas.counts();
        self.metrics.record_feasibility(feas_hits, feas_misses);
        self.metrics.record_sweep(
            result.route.name(),
            points.len() as u64,
            point_errors,
            result.reused_points() as u64,
            result.shared_steps,
        );
        Ok(frames)
    }
}

/// One item's source string: its own `source` field if set, else the
/// batch-level shared source.
fn item_source<'a>(item: &'a Json, shared: Option<&'a str>) -> Option<&'a str> {
    item.get("source").and_then(Json::as_str).or(shared)
}

/// Renders one NDJSON frame: `{"index":N,"status":S,"body":...}\n` with the
/// response body spliced in verbatim. This is the single framing used by
/// *both* streaming endpoints — `/v1/batch` items and `/v1/sweep` grid
/// points — so each frame's `body` is byte-identical to the equivalent
/// standalone response and clients decode one shape.
fn ndjson_frame(index: usize, resp: &Response) -> Vec<u8> {
    let mut frame = Vec::with_capacity(resp.body.len() + 48);
    frame.extend_from_slice(format!("{{\"index\":{index},\"status\":{}", resp.status).as_bytes());
    frame.extend_from_slice(b",\"body\":");
    frame.extend_from_slice(&resp.body);
    frame.extend_from_slice(b"}\n");
    frame
}

/// One grid point's response body: the `/v1/run` shape plus the point's
/// swept bindings and the sharing route, minus the `stats` object (per-point
/// statistics are not meaningful under shared exploration — see
/// `bayonet_exact::SweepResult`). The `text` field is the `bayonet run`
/// stdout for this point minus its stats bracket.
fn sweep_point_response(
    sweep: &SweepResult,
    grid: &[(String, Vec<Rat>)],
    point: &[Rat],
    result: &bayonet_exact::SweepPointResult,
) -> Response {
    let mut text = String::new();
    for r in &result.results {
        let _ = write!(text, "{r}");
    }
    let _ = writeln!(
        text,
        "Z = {} (discarded by observations: {})",
        result.z, result.discarded
    );
    let point_obj: Vec<(String, Json)> = grid
        .iter()
        .zip(point)
        .map(|((name, _), value)| (name.clone(), Json::Str(value.to_string())))
        .collect();
    let engine = match sweep.engine {
        EngineKind::Bdd => "bdd",
        _ => "exact",
    };
    Response::json(
        200,
        Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("engine", Json::Str(engine.into())),
            ("route", Json::Str(sweep.route.name().into())),
            ("point", Json::Obj(point_obj)),
            (
                "results",
                Json::Arr(result.results.iter().map(query_result_json).collect()),
            ),
            ("z", Json::Str(result.z.to_string())),
            ("discarded", Json::Str(result.discarded.to_string())),
            ("text", Json::Str(text)),
        ])
        .to_string(),
    )
}

/// The decoded body of a `/v1/sweep` request.
struct SweepRequest {
    source: String,
    /// Exact backends only (`exact`/`enum`, `bdd`, or `auto` resolved by
    /// the sweep engine); sampling engines cannot share work across points.
    engine: Engine,
    /// Fixed (non-swept) parameter bindings, sorted by name.
    bindings: Vec<(String, Rat)>,
    /// Swept parameters with their value lists, sorted by name. The grid is
    /// their cartesian product, row-major in this order: the last-sorted
    /// parameter varies fastest, and frame `index` follows this order.
    sweep: Vec<(String, Vec<Rat>)>,
    timeout_ms: Option<u64>,
    threads: Option<usize>,
    /// Whether to run the model-optimization pass pipeline (default true).
    passes: bool,
}

impl SweepRequest {
    fn from_http(req: &Request) -> Result<SweepRequest, ApiError> {
        let bad = |message: String, field: Option<String>| ApiError {
            status: 400,
            kind: "bad_request",
            message,
            field,
        };
        let body = req.body_str().map_err(|e| bad(e.to_string(), None))?;
        let doc = json::parse(body).map_err(|e| bad(e.to_string(), None))?;
        let Some(pairs) = doc.as_obj() else {
            return Err(bad("request body must be a JSON object".into(), None));
        };

        let known = [
            "source",
            "program",
            "sweep",
            "engine",
            "bindings",
            "timeout_ms",
            "threads",
            "passes",
        ];
        for (key, _) in pairs {
            if !known.contains(&key.as_str()) {
                return Err(bad(
                    format!(
                        "unknown sweep field `{key}` (known fields: {})",
                        known.join(", ")
                    ),
                    Some(key.clone()),
                ));
            }
        }

        // `program` is accepted as an alias for `source` (a grid file pairs
        // naturally with a program file); setting both is ambiguous.
        let source_field = doc.get("source").filter(|v| !matches!(v, Json::Null));
        let program_field = doc.get("program").filter(|v| !matches!(v, Json::Null));
        if source_field.is_some() && program_field.is_some() {
            return Err(bad(
                "`program` conflicts with `source`; set exactly one".into(),
                Some("program".into()),
            ));
        }
        let source = match source_field.or(program_field) {
            Some(Json::Str(s)) => s.clone(),
            Some(_) => {
                return Err(bad(
                    "`source` must be a string".into(),
                    Some("source".into()),
                ))
            }
            None => {
                return Err(bad(
                    "missing required string field `source`".into(),
                    Some("source".into()),
                ))
            }
        };

        let engine = match doc.get("engine").map(|e| (e, e.as_str())) {
            None => Engine::Exact,
            Some((_, Some("exact" | "enum"))) => Engine::Exact,
            Some((_, Some("bdd"))) => Engine::Bdd,
            Some((_, Some("auto"))) => Engine::Auto,
            Some((_, Some("smc" | "rejection"))) => {
                return Err(bad(
                    "sweeps are exact-only (known engines: exact, enum, bdd, auto); \
                     sampling engines cannot share work across grid points"
                        .into(),
                    Some("engine".into()),
                ))
            }
            Some((v, _)) => {
                return Err(bad(
                    format!("unknown engine {v} (known engines: exact, enum, bdd, auto)"),
                    Some("engine".into()),
                ))
            }
        };

        let mut bindings = Vec::new();
        match doc.get("bindings") {
            None | Some(Json::Null) => {}
            Some(Json::Obj(pairs)) => {
                for (name, value) in pairs {
                    let rat = rat_from_json(value).ok_or_else(|| {
                        bad(
                            format!(
                                "binding `{name}` must be an integer or a rational string \
                                 like \"1/2\""
                            ),
                            Some(format!("bindings.{name}")),
                        )
                    })?;
                    bindings.push((name.clone(), rat));
                }
            }
            Some(_) => {
                return Err(bad(
                    "`bindings` must be an object".into(),
                    Some("bindings".into()),
                ))
            }
        }
        bindings.sort_by(|a, b| a.0.cmp(&b.0));

        let mut sweep: Vec<(String, Vec<Rat>)> = Vec::new();
        match doc.get("sweep") {
            None | Some(Json::Null) => {
                return Err(bad(
                    "missing required object field `sweep`".into(),
                    Some("sweep".into()),
                ))
            }
            Some(Json::Obj(grid)) => {
                if grid.is_empty() {
                    return Err(bad(
                        "`sweep` must name at least one parameter".into(),
                        Some("sweep".into()),
                    ));
                }
                for (name, values) in grid {
                    let field = format!("sweep.{name}");
                    let Some(arr) = values.as_arr() else {
                        return Err(bad(
                            format!("`{field}` must be an array of values"),
                            Some(field),
                        ));
                    };
                    if arr.is_empty() {
                        return Err(bad(
                            format!("`{field}` must contain at least one value"),
                            Some(field),
                        ));
                    }
                    if sweep.iter().any(|(n, _)| n == name) {
                        return Err(bad(
                            format!("parameter `{name}` appears twice in `sweep`"),
                            Some(field),
                        ));
                    }
                    let mut vals = Vec::with_capacity(arr.len());
                    for v in arr {
                        vals.push(rat_from_json(v).ok_or_else(|| {
                            bad(
                                format!(
                                    "values in `{field}` must be integers or rational \
                                     strings like \"1/2\""
                                ),
                                Some(field.clone()),
                            )
                        })?);
                    }
                    sweep.push((name.clone(), vals));
                }
            }
            Some(_) => {
                return Err(bad(
                    "`sweep` must be an object mapping parameter names to value arrays".into(),
                    Some("sweep".into()),
                ))
            }
        }
        sweep.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, _) in &sweep {
            if bindings.iter().any(|(b, _)| b == name) {
                return Err(bad(
                    format!("parameter `{name}` is set in both `bindings` and `sweep`"),
                    Some(format!("sweep.{name}")),
                ));
            }
        }
        let total = sweep
            .iter()
            .fold(1usize, |acc, (_, v)| acc.saturating_mul(v.len()));
        if total > MAX_SWEEP_POINTS {
            return Err(bad(
                format!("sweep grid has {total} points; the maximum is {MAX_SWEEP_POINTS}"),
                Some("sweep".into()),
            ));
        }

        let bounded = |name: &'static str, lo: u64, hi: u64| -> Result<Option<u64>, ApiError> {
            match doc.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => match v.as_u64() {
                    Some(n) if (lo..=hi).contains(&n) => Ok(Some(n)),
                    Some(n) => Err(bad(
                        format!("`{name}` must be between {lo} and {hi}, got {n}"),
                        Some(name.to_string()),
                    )),
                    None => Err(bad(
                        format!("`{name}` must be a nonnegative integer"),
                        Some(name.to_string()),
                    )),
                },
            }
        };
        let timeout_ms = bounded("timeout_ms", 1, MAX_TIMEOUT_MS)?;
        let threads = bounded("threads", 1, MAX_REQUEST_THREADS)?.map(|v| v as usize);

        // Defaults to *true*, matching `/v1/run` and the CLI.
        let passes = match doc.get("passes") {
            None | Some(Json::Null) => true,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| bad("`passes` must be a boolean".into(), Some("passes".into())))?,
        };

        Ok(SweepRequest {
            source,
            engine,
            bindings,
            sweep,
            timeout_ms,
            threads,
            passes,
        })
    }

    /// The full grid: cartesian product of the per-parameter value lists,
    /// row-major over the name-sorted parameter order.
    fn points(&self) -> Vec<Vec<Rat>> {
        let mut points: Vec<Vec<Rat>> = vec![Vec::new()];
        for (_, values) in &self.sweep {
            let mut next = Vec::with_capacity(points.len() * values.len());
            for prefix in &points {
                for v in values {
                    let mut row = prefix.clone();
                    row.push(v.clone());
                    next.push(row);
                }
            }
            points = next;
        }
        points
    }

    /// Cache key for one grid point's response body. Sweep bodies carry
    /// extra fields (`point`, `route`) and omit `stats`, so they live under
    /// sweep-specific keys rather than sharing `/v1/run` entries.
    fn point_key(&self, canonical_program: &str, point: &[Rat]) -> u64 {
        let mut h = DefaultHasher::new();
        "/v1/sweep".hash(&mut h);
        canonical_program.hash(&mut h);
        self.engine.name().hash(&mut h);
        self.passes.hash(&mut h);
        for (name, value) in &self.bindings {
            name.hash(&mut h);
            value.to_string().hash(&mut h);
        }
        for ((name, _), value) in self.sweep.iter().zip(point) {
            name.hash(&mut h);
            value.to_string().hash(&mut h);
        }
        h.finish()
    }
}

/// Decodes one parameter value: a JSON integer or a rational string like
/// `"1/2"` — the same forms `bindings` accepts.
fn rat_from_json(value: &Json) -> Option<Rat> {
    match value {
        Json::Str(s) => s.parse::<Rat>().ok(),
        Json::Num(n) if n.fract() == 0.0 && n.abs() < 9e15 => Some(Rat::ratio(*n as i64, 1)),
        _ => None,
    }
}

/// One distinct source's shared parse → check → compile outcome.
struct PreparedSource {
    /// Canonical pretty-printed program (empty when parsing failed).
    canonical: String,
    /// A compiled model template cloned per item, or the structured error
    /// every item with this source reports.
    outcome: Result<Model, ApiError>,
}

/// Result of the batch scan phase.
struct BatchPrep {
    /// Shared outcome per distinct raw source text.
    by_source: HashMap<String, Arc<PreparedSource>>,
    /// Distinct canonical programs actually compiled.
    compiles: u64,
    /// Distinct outcomes built (compiles plus parse failures); everything
    /// else was a reuse.
    fresh: u64,
}

/// Counters from one batch run, for `bayonet_batch_*` metrics.
struct BatchStats {
    items: u64,
    item_errors: u64,
    compiles: u64,
    source_reuse: u64,
}

/// The decoded body of a `/v1/batch` request.
struct BatchRequest {
    /// The raw per-item JSON objects, validated to be objects.
    items: Vec<Json>,
    /// Batch-level shared program source, if any.
    shared_source: Option<String>,
    /// Batch-level deadline budget covering all items.
    timeout_ms: Option<u64>,
}

impl BatchRequest {
    fn from_http(req: &Request) -> Result<BatchRequest, ApiError> {
        let bad = |message: String, field: Option<String>| ApiError {
            status: 400,
            kind: "bad_request",
            message,
            field,
        };
        let body = req.body_str().map_err(|e| bad(e.to_string(), None))?;
        let doc = json::parse(body).map_err(|e| bad(e.to_string(), None))?;
        let Some(pairs) = doc.as_obj() else {
            return Err(bad("request body must be a JSON object".into(), None));
        };

        let known = ["source", "items", "timeout_ms"];
        for (key, _) in pairs {
            if !known.contains(&key.as_str()) {
                return Err(bad(
                    format!(
                        "unknown batch field `{key}` (known fields: {})",
                        known.join(", ")
                    ),
                    Some(key.clone()),
                ));
            }
        }

        let shared_source = match doc.get("source") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => {
                return Err(bad(
                    "`source` must be a string".into(),
                    Some("source".into()),
                ))
            }
        };
        let timeout_ms = match doc.get("timeout_ms") {
            None | Some(Json::Null) => None,
            Some(v) => match v.as_u64() {
                Some(ms) if (1..=MAX_TIMEOUT_MS).contains(&ms) => Some(ms),
                Some(ms) => {
                    return Err(bad(
                        format!("`timeout_ms` must be between 1 and {MAX_TIMEOUT_MS}, got {ms}"),
                        Some("timeout_ms".into()),
                    ))
                }
                None => {
                    return Err(bad(
                        "`timeout_ms` must be a nonnegative integer".into(),
                        Some("timeout_ms".into()),
                    ))
                }
            },
        };

        let items = match doc.get("items") {
            None => {
                return Err(bad(
                    "missing required array field `items`".into(),
                    Some("items".into()),
                ))
            }
            Some(v) => match v.as_arr() {
                Some(items) => items.to_vec(),
                None => return Err(bad("`items` must be an array".into(), Some("items".into()))),
            },
        };
        if items.is_empty() || items.len() > MAX_BATCH_ITEMS {
            return Err(bad(
                format!(
                    "`items` must contain between 1 and {MAX_BATCH_ITEMS} items, got {}",
                    items.len()
                ),
                Some("items".into()),
            ));
        }
        for (i, item) in items.iter().enumerate() {
            if item.as_obj().is_none() {
                return Err(bad(
                    format!("batch item {i} must be a JSON object"),
                    Some(format!("items[{i}]")),
                ));
            }
            let has_own_source = matches!(item.get("source"), Some(v) if !matches!(v, Json::Null));
            if shared_source.is_some() && has_own_source {
                return Err(bad(
                    format!(
                        "batch item {i} sets `source` while the batch has a shared top-level \
                         `source`; use one or the other"
                    ),
                    Some(format!("items[{i}].source")),
                ));
            }
        }

        Ok(BatchRequest {
            items,
            shared_source,
            timeout_ms,
        })
    }

    /// The batch-level deadline covering every item.
    fn deadline(&self) -> Deadline {
        match self.timeout_ms {
            Some(ms) => Deadline::after(Duration::from_millis(ms)),
            None => Deadline::unlimited(),
        }
    }
}

/// Collapses request paths onto a bounded label set, so hostile paths
/// cannot blow up metric cardinality.
fn normalize_endpoint(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/v1/check" => "/v1/check",
        "/v1/run" => "/v1/run",
        "/v1/synthesize" => "/v1/synthesize",
        "/v1/batch" => "/v1/batch",
        "/v1/sweep" => "/v1/sweep",
        _ => "other",
    }
}

fn query_result_json(result: &QueryResult) -> Json {
    let cells = result
        .cells
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("constraint", Json::Str(c.constraint.clone())),
                (
                    "value",
                    c.value
                        .as_ref()
                        .map(|v| Json::Str(v.to_string()))
                        .unwrap_or(Json::Null),
                ),
                ("z", Json::Str(c.z.to_string())),
                ("discarded", Json::Str(c.discarded.to_string())),
            ])
        })
        .collect();
    Json::obj(vec![
        ("query", Json::Str(result.source.clone())),
        ("cells", Json::Arr(cells)),
    ])
}

/// Inference engines the service can run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Engine {
    Exact,
    /// The `bayonet-bdd` knowledge-compilation backend: same posteriors as
    /// [`Engine::Exact`], bit for bit, often much faster on structured
    /// topologies. `"enum"` is accepted as an alias for `"exact"`.
    Bdd,
    Smc,
    Rejection,
    /// Planner-routed: the static cost model picks exact, bdd, or smc per
    /// request (`crate`-level docs; `bayonet_exact::planner`). Resolved to
    /// a concrete engine *before* the cache key is computed, so an
    /// auto-routed result and the same request with the chosen engine
    /// spelled out share one cache entry.
    Auto,
}

impl Engine {
    fn name(self) -> &'static str {
        match self {
            Engine::Exact => "exact",
            Engine::Bdd => "bdd",
            Engine::Smc => "smc",
            Engine::Rejection => "rejection",
            Engine::Auto => "auto",
        }
    }
}

/// A structured API error, rendered as `{"ok":false,"error":{...}}`.
/// When the error is about one specific request field, `field` names it
/// machine-readably alongside the human message. `Clone` lets a batch
/// report one shared compile failure from every affected item.
#[derive(Clone)]
struct ApiError {
    status: u16,
    kind: &'static str,
    message: String,
    field: Option<String>,
}

impl ApiError {
    fn into_response(self) -> Response {
        let mut error = vec![
            ("kind", Json::Str(self.kind.into())),
            ("message", Json::Str(self.message)),
        ];
        if let Some(field) = self.field {
            error.push(("field", Json::Str(field)));
        }
        Response::json(
            self.status,
            Json::obj(vec![("ok", Json::Bool(false)), ("error", Json::obj(error))]).to_string(),
        )
    }
}

/// The structured 422 for a request whose cheapest cost estimate exceeds
/// its deadline budget (`"engine": "auto"` only — explicit engines keep the
/// run-then-interrupt contract). The `plan` object carries the estimates so
/// the client can raise `timeout_ms` by an informed amount, pick an engine
/// explicitly, or shrink the program. See `docs/SERVER.md`.
fn infeasible_response(plan: &Plan, needed_ns: u64) -> Response {
    let ms = |ns: u64| Json::Num((ns as f64 / 1e6 * 1000.0).round() / 1000.0);
    let mut plan_obj = vec![
        ("needed_ms", ms(needed_ns)),
        ("budget_ms", plan.budget_ns.map_or(Json::Null, ms)),
        ("est_expansions", Json::Num(plan.est_expansions as f64)),
        ("est_enum_ms", ms(plan.est_enum_ns)),
    ];
    if let Some(ns) = plan.est_bdd_ns {
        plan_obj.push(("est_bdd_ms", ms(ns)));
    }
    if let (Some(ns), Some(particles)) = (plan.est_smc_ns, plan.particles) {
        plan_obj.push(("est_smc_ms", ms(ns)));
        plan_obj.push(("est_smc_particles", Json::Num(particles as f64)));
    }
    let error = vec![
        ("kind", Json::Str("infeasible_deadline".into())),
        (
            "message",
            Json::Str(format!(
                "planner estimates {:.1} ms of work for the cheapest eligible \
                 engine but the deadline budget is {:.1} ms; raise timeout_ms, \
                 select an engine explicitly, or shrink the program",
                needed_ns as f64 / 1e6,
                plan.budget_ns.unwrap_or(0) as f64 / 1e6,
            )),
        ),
        ("field", Json::Str("timeout_ms".into())),
        ("plan", Json::obj(plan_obj)),
    ];
    Response::json(
        422,
        Json::obj(vec![("ok", Json::Bool(false)), ("error", Json::obj(error))]).to_string(),
    )
}

fn exact_error(e: ExactError) -> ApiError {
    exact_error_ref(&e)
}

/// By-reference variant for per-point sweep errors, which stay owned by the
/// [`bayonet_exact::SweepResult`].
fn exact_error_ref(e: &ExactError) -> ApiError {
    match e {
        ExactError::Interrupted { .. } => ApiError {
            status: 504,
            kind: "timeout",
            message: e.to_string(),
            field: None,
        },
        other => ApiError {
            status: 422,
            kind: "engine_error",
            message: other.to_string(),
            field: None,
        },
    }
}

fn approx_error(e: ApproxError) -> ApiError {
    match e {
        ApproxError::Interrupted { .. } => ApiError {
            status: 504,
            kind: "timeout",
            message: e.to_string(),
            field: None,
        },
        other => ApiError {
            status: 422,
            kind: "engine_error",
            message: other.to_string(),
            field: None,
        },
    }
}

/// The decoded body of a `/v1/*` inference request.
struct InferenceRequest {
    source: String,
    engine: Engine,
    query: Option<usize>,
    /// Parameter bindings, sorted by name for canonical hashing.
    bindings: Vec<(String, Rat)>,
    particles: Option<usize>,
    seed: Option<u64>,
    timeout_ms: Option<u64>,
    /// Requested exact-engine worker threads; validated at parse time and
    /// clamped to the server's pool capacity at execution time.
    threads: Option<usize>,
    maximize: bool,
    allow_zero_params: bool,
    /// Whether to run the model-optimization pass pipeline (default true;
    /// `"passes": false` mirrors the CLI's `--no-opt`). Part of the cache
    /// key: pass-on and pass-off runs report different engine stats.
    passes: bool,
}

impl InferenceRequest {
    fn from_http(req: &Request) -> Result<InferenceRequest, ApiError> {
        let bad = |message: String| ApiError {
            status: 400,
            kind: "bad_request",
            message,
            field: None,
        };
        let body = req.body_str().map_err(|e| bad(e.to_string()))?;
        let doc = json::parse(body).map_err(|e| bad(e.to_string()))?;
        InferenceRequest::from_json(&doc, None)
    }

    /// Decodes one inference request from an already parsed JSON object —
    /// either a whole `/v1/*` request body or one `/v1/batch` item. With
    /// `shared_source` set, an item missing its own `source` inherits it;
    /// every validation message matches the single-request path exactly, so
    /// batch frames stay byte-identical to `/v1/run` responses.
    fn from_json(doc: &Json, shared_source: Option<&str>) -> Result<InferenceRequest, ApiError> {
        let bad = |message: String| ApiError {
            status: 400,
            kind: "bad_request",
            message,
            field: None,
        };
        if doc.as_obj().is_none() {
            return Err(bad("request body must be a JSON object".into()));
        }

        let known = [
            "source",
            "engine",
            "query",
            "bindings",
            "particles",
            "seed",
            "timeout_ms",
            "threads",
            "maximize",
            "allow_zero_params",
            "passes",
        ];
        for (key, _) in doc.as_obj().expect("checked") {
            if !known.contains(&key.as_str()) {
                // Named structurally (`error.field`) so clients can catch a
                // typo like `"cache": false` programmatically instead of
                // having it silently change nothing.
                return Err(ApiError {
                    status: 400,
                    kind: "bad_request",
                    message: format!(
                        "unknown request field `{key}` (known fields: {})",
                        known.join(", ")
                    ),
                    field: Some(key.clone()),
                });
            }
        }

        let source = doc
            .get("source")
            .and_then(Json::as_str)
            .or(shared_source)
            .ok_or_else(|| bad("missing required string field `source`".into()))?
            .to_string();
        let engine = match doc.get("engine").map(|e| (e, e.as_str())) {
            None => Engine::Exact,
            Some((_, Some("exact" | "enum"))) => Engine::Exact,
            Some((_, Some("bdd"))) => Engine::Bdd,
            Some((_, Some("smc"))) => Engine::Smc,
            Some((_, Some("rejection"))) => Engine::Rejection,
            Some((_, Some("auto"))) => Engine::Auto,
            Some((v, _)) => {
                return Err(ApiError {
                    status: 400,
                    kind: "bad_request",
                    message: format!(
                        "unknown engine {v} (known engines: exact, enum, bdd, smc, rejection, auto)"
                    ),
                    field: Some("engine".into()),
                })
            }
        };
        let query = match doc.get("query") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| bad("`query` must be a nonnegative integer".into()))?
                    as usize,
            ),
        };
        let mut bindings = Vec::new();
        match doc.get("bindings") {
            None | Some(Json::Null) => {}
            Some(Json::Obj(pairs)) => {
                for (name, value) in pairs {
                    let rat = match value {
                        Json::Str(s) => s
                            .parse::<Rat>()
                            .map_err(|e| bad(format!("bad binding for `{name}`: {e}")))?,
                        Json::Num(n) if n.fract() == 0.0 && n.abs() < 9e15 => {
                            Rat::ratio(*n as i64, 1)
                        }
                        _ => {
                            return Err(bad(format!(
                                "binding `{name}` must be an integer or a rational string \
                                 like \"1/2\""
                            )))
                        }
                    };
                    bindings.push((name.clone(), rat));
                }
            }
            Some(_) => return Err(bad("`bindings` must be an object".into())),
        }
        bindings.sort_by(|a, b| a.0.cmp(&b.0));

        let int_field = |name: &str| -> Result<Option<u64>, ApiError> {
            match doc.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => v
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| bad(format!("`{name}` must be a nonnegative integer"))),
            }
        };
        let bool_field = |name: &str| -> Result<bool, ApiError> {
            match doc.get(name) {
                None | Some(Json::Null) => Ok(false),
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| bad(format!("`{name}` must be a boolean"))),
            }
        };

        // Bounded integer knobs: wrong type, negative, zero, and
        // out-of-range values are all structured 400s, never silent
        // defaults. `timeout_ms: 0` would be a deadline that has already
        // expired, and `threads: 0` a run with no workers — both are
        // client mistakes worth naming.
        let bounded_field = |name: &str, lo: u64, hi: u64| -> Result<Option<u64>, ApiError> {
            match int_field(name)? {
                None => Ok(None),
                Some(v) if (lo..=hi).contains(&v) => Ok(Some(v)),
                Some(v) => Err(bad(format!(
                    "`{name}` must be between {lo} and {hi}, got {v}"
                ))),
            }
        };
        let timeout_ms = bounded_field("timeout_ms", 1, MAX_TIMEOUT_MS)?;
        let threads = bounded_field("threads", 1, MAX_REQUEST_THREADS)?.map(|v| v as usize);

        // Unlike the other boolean knobs, `passes` defaults to *true*.
        let passes = match doc.get("passes") {
            None | Some(Json::Null) => true,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| bad("`passes` must be a boolean".into()))?,
        };

        Ok(InferenceRequest {
            source,
            engine,
            query,
            bindings,
            particles: int_field("particles")?.map(|v| v as usize),
            seed: int_field("seed")?,
            timeout_ms,
            threads,
            maximize: bool_field("maximize")?,
            allow_zero_params: bool_field("allow_zero_params")?,
            passes,
        })
    }

    fn deadline(&self) -> Deadline {
        match self.timeout_ms {
            Some(ms) => Deadline::after(Duration::from_millis(ms)),
            None => Deadline::unlimited(),
        }
    }

    fn cache_key(&self, endpoint: &str, canonical_program: &str) -> u64 {
        let mut h = DefaultHasher::new();
        endpoint.hash(&mut h);
        canonical_program.hash(&mut h);
        self.engine.name().hash(&mut h);
        self.query.hash(&mut h);
        self.particles.hash(&mut h);
        self.seed.hash(&mut h);
        self.maximize.hash(&mut h);
        self.allow_zero_params.hash(&mut h);
        self.passes.hash(&mut h);
        for (name, value) in &self.bindings {
            name.hash(&mut h);
            value.to_string().hash(&mut h);
        }
        h.finish()
    }

    fn check_query_index(&self, idx: usize, len: usize) -> Result<(), ApiError> {
        if idx < len {
            Ok(())
        } else {
            Err(ApiError {
                status: 400,
                kind: "bad_request",
                message: format!("query index {idx} out of range ({len} queries declared)"),
                field: None,
            })
        }
    }

    /// The CLI's `load()` pipeline: compile, apply bindings, pick the
    /// scheduler.
    fn build_model(&self) -> Result<(Model, Box<dyn Scheduler>), ApiError> {
        let program = parse(&self.source).expect("parsed once already");
        let mut model = check_and_compile(&program)?;
        apply_bindings(&mut model, &self.bindings)?;
        let scheduler = scheduler_for(&model);
        Ok((model, scheduler))
    }
}

/// Integrity-checks and compiles a parsed program with the same error
/// shapes as the single-request path. Batch preparation calls this once
/// per distinct canonical source.
fn check_and_compile(program: &Program) -> Result<Model, ApiError> {
    check(program).map_err(|errors| ApiError {
        status: 422,
        kind: "check_error",
        message: format!(
            "{} integrity error(s): {}",
            errors.len(),
            errors
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        ),
        field: None,
    })?;
    compile(program).map_err(|e| ApiError {
        status: 422,
        kind: "compile_error",
        message: e.to_string(),
        field: None,
    })
}

/// Applies request parameter bindings to a model, again with single-request
/// error shapes.
fn apply_bindings(model: &mut Model, bindings: &[(String, Rat)]) -> Result<(), ApiError> {
    for (name, value) in bindings {
        model
            .bind_param(name, value.clone())
            .map_err(|e| ApiError {
                status: 400,
                kind: "bad_request",
                message: e.to_string(),
                field: None,
            })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOSSIP: &str = r#"
        packet_fields { dst }
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> send, B -> recv }
        init { packet -> (A, pt1); }
        query probability(got@B == 1);
        def send(pkt, pt) { if flip(1/3) { fwd(1); } else { drop; } }
        def recv(pkt, pt) state got(0) { got = 1; drop; }
    "#;

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn body_json(resp: &Response) -> Json {
        json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap()
    }

    /// Pins the one NDJSON framing shared by `/v1/batch` items and
    /// `/v1/sweep` grid points: `{"index":N,"status":S,"body":...}\n` with
    /// the response body spliced in verbatim.
    #[test]
    fn ndjson_frame_encoding_is_pinned() {
        let resp = Response::json(207, r#"{"ok":true}"#);
        assert_eq!(
            ndjson_frame(3, &resp),
            br#"{"index":3,"status":207,"body":{"ok":true}}
"#
        );
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let svc = Service::new(4);
        assert_eq!(svc.handle(&get("/healthz")).status, 200);
        assert_eq!(svc.handle(&get("/nope")).status, 404);
        assert_eq!(svc.handle(&get("/v1/run")).status, 405);
    }

    #[test]
    fn run_exact_returns_cli_text() {
        let svc = Service::new(4);
        let body = Json::obj(vec![("source", Json::Str(GOSSIP.into()))]).to_string();
        let resp = svc.handle(&post("/v1/run", &body));
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let doc = body_json(&resp);
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        let text = doc.get("text").unwrap().as_str().unwrap();
        assert!(text.contains("1/3"), "{text}");
        assert!(text.contains("Z = 1"), "{text}");
        assert!(text.ends_with("merge hits]\n"), "{text}");
    }

    #[test]
    fn identical_requests_hit_the_cache() {
        let svc = Service::new(4);
        let body = Json::obj(vec![("source", Json::Str(GOSSIP.into()))]).to_string();
        let first = svc.handle(&post("/v1/run", &body));
        // Different surface syntax, same canonical program: extra blank
        // lines don't defeat the cache.
        let body2 = Json::obj(vec![("source", Json::Str(format!("\n\n{GOSSIP}\n")))]).to_string();
        let second = svc.handle(&post("/v1/run", &body2));
        assert_eq!(first, second);
        assert_eq!(svc.metrics().cache_counts(), (1, 1));
    }

    #[test]
    fn errors_are_structured_and_uncached() {
        let svc = Service::new(4);
        let resp = svc.handle(&post("/v1/run", "not json"));
        assert_eq!(resp.status, 400);
        let doc = body_json(&resp);
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(
            doc.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("bad_request")
        );

        let bad_field = r#"{"source":"x","fuel":1}"#;
        let resp = svc.handle(&post("/v1/run", bad_field));
        assert_eq!(resp.status, 400);
        assert!(String::from_utf8_lossy(&resp.body).contains("unknown request field"));

        let parse_fail = Json::obj(vec![("source", Json::Str("not a program".into()))]).to_string();
        let resp = svc.handle(&post("/v1/run", &parse_fail));
        assert_eq!(resp.status, 422);
        assert_eq!(
            body_json(&resp)
                .get("error")
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str(),
            Some("parse_error")
        );
        // All three failed before reaching the cache, so no hits or misses.
        assert_eq!(svc.metrics().cache_counts(), (0, 0));
    }

    #[test]
    fn smc_engine_estimates() {
        let svc = Service::new(4);
        let body = Json::obj(vec![
            ("source", Json::Str(GOSSIP.into())),
            ("engine", Json::Str("smc".into())),
            ("particles", Json::Num(200.0)),
            ("seed", Json::Num(7.0)),
        ])
        .to_string();
        let resp = svc.handle(&post("/v1/run", &body));
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let doc = body_json(&resp);
        let est = &doc.get("estimates").unwrap();
        let value = est
            .get_index(0)
            .and_then(|e| e.get("value"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!((value - 1.0 / 3.0).abs() < 0.15, "estimate {value}");
    }

    /// Gossip on K4 (examples/bay/gossip_k4.bay): big enough that a 1 ms
    /// deadline reliably expires mid-exploration.
    const GOSSIP_K4: &str = r#"
        packet_fields { dst }
        topology {
            nodes { S0, S1, S2, S3 }
            links {
                (S0, pt1) <-> (S1, pt1), (S0, pt2) <-> (S2, pt1),
                (S0, pt3) <-> (S3, pt1), (S1, pt2) <-> (S2, pt2),
                (S1, pt3) <-> (S3, pt2), (S2, pt3) <-> (S3, pt3)
            }
        }
        programs { S0 -> seed, S1 -> gossip, S2 -> gossip, S3 -> gossip }
        init { packet -> (S0, pt1); }
        query expectation(infected@S0 + infected@S1 + infected@S2 + infected@S3);
        def seed(pkt, pt) state infected(0) {
            if infected == 0 { infected = 1; fwd(uniformInt(1, 3)); }
            else { drop; }
        }
        def gossip(pkt, pt) state infected(0) {
            if infected == 0 {
                infected = 1;
                dup;
                fwd(uniformInt(1, 3));
                fwd(uniformInt(1, 3));
            } else { drop; }
        }
    "#;

    #[test]
    fn timeout_returns_structured_error() {
        let svc = Service::new(4);
        let body = Json::obj(vec![
            ("source", Json::Str(GOSSIP_K4.into())),
            ("timeout_ms", Json::Num(1.0)),
        ])
        .to_string();
        let resp = svc.handle(&post("/v1/run", &body));
        assert_eq!(
            resp.status,
            504,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let doc = body_json(&resp);
        assert_eq!(
            doc.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("timeout")
        );
    }

    /// Splits an NDJSON batch body into `(index, status, raw body)` frame
    /// parts, keeping the body bytes verbatim for byte-identity checks.
    fn frames(resp: &Response) -> Vec<(u64, u64, String)> {
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let text = std::str::from_utf8(&resp.body).unwrap();
        text.lines()
            .map(|line| {
                let doc = json::parse(line).unwrap();
                let index = doc.get("index").unwrap().as_u64().unwrap();
                let status = doc.get("status").unwrap().as_u64().unwrap();
                let start = line.find(",\"body\":").unwrap() + ",\"body\":".len();
                let body = line[start..line.len() - 1].to_string();
                (index, status, body)
            })
            .collect()
    }

    #[test]
    fn batch_shared_source_compiles_once_and_matches_single_runs() {
        // Independent service computes the sequential baselines.
        let single = Service::new(8);
        let item_bodies = [
            Json::obj(vec![("source", Json::Str(GOSSIP.into()))]).to_string(),
            Json::obj(vec![
                ("source", Json::Str(GOSSIP.into())),
                ("engine", Json::Str("smc".into())),
                ("particles", Json::Num(100.0)),
                ("seed", Json::Num(1.0)),
            ])
            .to_string(),
            Json::obj(vec![
                ("source", Json::Str(GOSSIP.into())),
                ("engine", Json::Str("smc".into())),
                ("particles", Json::Num(100.0)),
                ("seed", Json::Num(2.0)),
            ])
            .to_string(),
        ];
        let baselines: Vec<Vec<u8>> = item_bodies
            .iter()
            .map(|b| {
                let resp = single.handle(&post("/v1/run", b));
                assert_eq!(resp.status, 200);
                resp.body
            })
            .collect();

        let svc = Service::new(8);
        let batch = format!(
            r#"{{"source":{},"items":[{{}},{{"engine":"smc","particles":100,"seed":1}},{{"engine":"smc","particles":100,"seed":2}}]}}"#,
            Json::Str(GOSSIP.into())
        );
        let resp = svc.handle(&post("/v1/batch", &batch));
        assert_eq!(resp.content_type, "application/x-ndjson");
        let frames = frames(&resp);
        assert_eq!(frames.len(), 3);
        for (i, (index, status, body)) in frames.iter().enumerate() {
            assert_eq!(*index, i as u64);
            assert_eq!(*status, 200);
            assert_eq!(body.as_bytes(), baselines[i], "item {i} diverged");
        }

        let metrics = svc.metrics().render();
        assert!(
            metrics.contains("bayonet_batch_requests_total 1"),
            "{metrics}"
        );
        assert!(metrics.contains("bayonet_batch_items_total 3"), "{metrics}");
        assert!(
            metrics.contains("bayonet_batch_item_errors_total 0"),
            "{metrics}"
        );
        // One shared source: compiled exactly once, reused by the other two.
        assert!(
            metrics.contains("bayonet_batch_compiles_total 1"),
            "{metrics}"
        );
        assert!(
            metrics.contains("bayonet_batch_source_reuse_total 2"),
            "{metrics}"
        );
    }

    #[test]
    fn batch_items_share_the_result_cache_with_single_runs() {
        let svc = Service::new(8);
        let run_body = Json::obj(vec![("source", Json::Str(GOSSIP.into()))]).to_string();
        let warm = svc.handle(&post("/v1/run", &run_body));
        assert_eq!(warm.status, 200);

        let batch = format!(r#"{{"items":[{{"source":{}}}]}}"#, Json::Str(GOSSIP.into()));
        let resp = svc.handle(&post("/v1/batch", &batch));
        let frames = frames(&resp);
        assert_eq!(frames[0].2.as_bytes(), warm.body);
        // One miss from the warm-up run, one hit from the batch item.
        assert_eq!(svc.metrics().cache_counts(), (1, 1));
    }

    #[test]
    fn batch_validation_is_structured_and_preflight() {
        let svc = Service::new(4);

        // Empty items array.
        let resp = svc.handle(&post("/v1/batch", r#"{"items":[]}"#));
        assert_eq!(resp.status, 400);
        let doc = body_json(&resp);
        assert_eq!(
            doc.get("error").unwrap().get("field").unwrap().as_str(),
            Some("items")
        );

        // Conflicting shared and per-item source.
        let body = format!(
            r#"{{"source":{},"items":[{{"source":"x"}}]}}"#,
            Json::Str(GOSSIP.into())
        );
        let resp = svc.handle(&post("/v1/batch", &body));
        assert_eq!(resp.status, 400);
        let doc = body_json(&resp);
        assert_eq!(
            doc.get("error").unwrap().get("field").unwrap().as_str(),
            Some("items[0].source")
        );

        // Unknown top-level batch field.
        let resp = svc.handle(&post("/v1/batch", r#"{"items":[{}],"engine":"smc"}"#));
        assert_eq!(resp.status, 400);
        let doc = body_json(&resp);
        assert_eq!(
            doc.get("error").unwrap().get("field").unwrap().as_str(),
            Some("engine")
        );

        // Non-object item.
        let resp = svc.handle(&post("/v1/batch", r#"{"items":[{},7]}"#));
        assert_eq!(resp.status, 400);
        let doc = body_json(&resp);
        assert_eq!(
            doc.get("error").unwrap().get("field").unwrap().as_str(),
            Some("items[1]")
        );

        // Nothing ran, so no batch metrics were recorded.
        let metrics = svc.metrics().render();
        assert!(
            metrics.contains("bayonet_batch_requests_total 0"),
            "{metrics}"
        );
    }

    #[test]
    fn batch_item_failures_do_not_abort_siblings() {
        let svc = Service::new(4);
        let batch = format!(
            r#"{{"source":{},"items":[{{}},{{"fuel":1}},{{"timeout_ms":0}}]}}"#,
            Json::Str(GOSSIP.into())
        );
        let resp = svc.handle(&post("/v1/batch", &batch));
        let frames = frames(&resp);
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].1, 200);
        // Unknown per-item field: same structured error as /v1/run.
        assert_eq!(frames[1].1, 400);
        assert!(
            frames[1].2.contains("unknown request field `fuel`"),
            "{}",
            frames[1].2
        );
        // Invalid per-item timeout.
        assert_eq!(frames[2].1, 400);
        assert!(frames[2].2.contains("timeout_ms"), "{}", frames[2].2);

        let metrics = svc.metrics().render();
        assert!(
            metrics.contains("bayonet_batch_item_errors_total 2"),
            "{metrics}"
        );
    }

    #[test]
    fn batch_deadline_expires_unstarted_items() {
        let svc = Service::new(0);
        // A batch whose budget is practically zero: every item that is not
        // already cached times out with a structured per-item 504.
        let batch = format!(
            r#"{{"source":{},"timeout_ms":1,"items":[{{}},{{"seed":1,"engine":"smc"}}]}}"#,
            Json::Str(GOSSIP_K4.into())
        );
        let resp = svc.handle(&post("/v1/batch", &batch));
        let frames = frames(&resp);
        assert_eq!(frames.len(), 2);
        for (_, status, body) in &frames {
            assert_eq!(*status, 504, "{body}");
            assert!(body.contains("timeout"), "{body}");
        }
    }

    #[test]
    fn threads_hint_is_accepted_and_results_match_single_threaded() {
        let single = Service::new(0);
        let body1 = Json::obj(vec![("source", Json::Str(GOSSIP.into()))]).to_string();
        let baseline = single.handle(&post("/v1/run", &body1));
        assert_eq!(baseline.status, 200);

        let pooled = Service::with_pool(0, ComputePool::new(4));
        let body8 = Json::obj(vec![
            ("source", Json::Str(GOSSIP.into())),
            ("threads", Json::Num(8.0)),
        ])
        .to_string();
        let parallel = pooled.handle(&post("/v1/run", &body8));
        assert_eq!(parallel.status, 200);
        // Identical posterior and identical rendered text: the threads
        // hint must never change what a request computes.
        assert_eq!(baseline.body, parallel.body);
    }
}
