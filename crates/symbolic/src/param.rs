//! Symbolic configuration parameters.
//!
//! Bayonet programs may leave configuration values (OSPF link costs, failure
//! probabilities, …) *symbolic*; the exact engine then reports query results
//! as piecewise functions of constraints over these parameters (paper §2.3).
//! Parameters are interned into a [`ParamTable`] and referenced by the
//! lightweight copyable [`ParamId`].

use std::collections::HashMap;
use std::fmt;

/// Identifier for an interned symbolic parameter.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ParamId(u32);

impl ParamId {
    /// The raw index of the parameter in its table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interning table mapping parameter names to [`ParamId`]s.
///
/// # Examples
///
/// ```
/// use bayonet_symbolic::ParamTable;
///
/// let mut table = ParamTable::new();
/// let c01 = table.intern("COST_01");
/// assert_eq!(table.intern("COST_01"), c01);
/// assert_eq!(table.name(c01), "COST_01");
/// ```
#[derive(Clone, Debug, Default)]
pub struct ParamTable {
    names: Vec<String>,
    ids: HashMap<String, ParamId>,
}

impl ParamTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing id if already present.
    pub fn intern(&mut self, name: &str) -> ParamId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = ParamId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    /// Looks up a name without interning.
    pub fn lookup(&self, name: &str) -> Option<ParamId> {
        self.ids.get(name).copied()
    }

    /// The name of a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this table.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned parameters.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no parameters are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all parameter ids in interning order.
    pub fn iter(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.names.len() as u32).map(ParamId)
    }
}

impl fmt::Display for ParamTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = ParamTable::new();
        let a = t.intern("COST_01");
        let b = t.intern("COST_02");
        assert_ne!(a, b);
        assert_eq!(t.intern("COST_01"), a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(b), "COST_02");
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut t = ParamTable::new();
        assert_eq!(t.lookup("X"), None);
        let x = t.intern("X");
        assert_eq!(t.lookup("X"), Some(x));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_order_matches_interning_order() {
        let mut t = ParamTable::new();
        let ids: Vec<_> = ["A", "B", "C"].iter().map(|n| t.intern(n)).collect();
        assert_eq!(t.iter().collect::<Vec<_>>(), ids);
    }
}
