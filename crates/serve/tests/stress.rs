//! Stress tests: one large parallel request sharing the server with a
//! burst of small concurrent requests, and concurrent batches against a
//! saturated pool.
//!
//! Locks down the pool-sharing contract: the big request leases idle
//! workers (visible as steal/lease movement in `/metrics`), the small
//! requests are neither deadlocked nor shed with `503`, and the pool's
//! occupancy returns to zero when the dust settles. The batch leg locks
//! down overload behavior: a shed batch is a *complete* buffered `503` —
//! never a half-written chunked body — and once the pool frees up a batch
//! completes with full chunked framing.

use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use bayonet_serve::{parse_json, start, Json, ServerConfig};

mod common;
use common::{metric_value, GOSSIP_K4, TINY};

/// A small two-node program, parameterized by the flip weight so each
/// burst request is a distinct cache entry (forcing real engine work).
fn small_program(k: u64) -> String {
    format!(
        r#"
        packet_fields {{ dst }}
        topology {{ nodes {{ A, B }} links {{ (A, pt1) <-> (B, pt1) }} }}
        programs {{ A -> send, B -> recv }}
        init {{ packet -> (A, pt1); }}
        query probability(got@B == 1);
        def send(pkt, pt) {{ if flip(1/{k}) {{ fwd(1); }} else {{ drop; }} }}
        def recv(pkt, pt) state got(0) {{ got = 1; drop; }}
    "#
    )
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let (status, _, payload) = common::http(addr, method, path, body);
    (status, payload)
}

#[test]
fn big_parallel_request_and_small_burst_coexist() {
    let handle = start(ServerConfig {
        threads: 4,
        ..common::test_config()
    })
    .expect("start server");
    let addr = handle.addr();

    // The big request asks for 8 workers; the server clamps it to the
    // 4-slot pool and lets it borrow whatever is idle.
    let big = std::thread::spawn(move || {
        let body = Json::obj(vec![
            ("source", Json::Str(GOSSIP_K4.into())),
            ("threads", Json::Num(8.0)),
        ])
        .to_string();
        http(addr, "POST", "/v1/run", &body)
    });

    // A burst of distinct small requests racing the big one.
    let burst: Vec<_> = (0..12)
        .map(|k| {
            std::thread::spawn(move || {
                let body = Json::obj(vec![("source", Json::Str(small_program(k + 2)))]).to_string();
                http(addr, "POST", "/v1/run", &body)
            })
        })
        .collect();

    for (k, client) in burst.into_iter().enumerate() {
        let (status, body) = client.join().expect("small client");
        // Small requests must never be shed or starved by the big one:
        // the queue is deep enough and the pool lease never blocks.
        assert_eq!(status, 200, "small request {k} failed: {body}");
        let doc = parse_json(&body).expect("json body");
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    }
    let (status, body) = big.join().expect("big client");
    assert_eq!(status, 200, "big request failed: {body}");
    let doc = parse_json(&body).expect("json body");
    let text = doc.get("text").and_then(Json::as_str).unwrap();
    assert!(text.contains("94/27"), "wrong posterior: {text}");

    // The pool saw the action: workers were leased, tasks were stolen, and
    // every slot was returned.
    let metrics = common::metrics(addr);
    assert_eq!(metric_value(&metrics, "bayonet_pool_workers_total"), 4.0);
    assert_eq!(metric_value(&metrics, "bayonet_pool_workers_busy"), 0.0);
    assert!(
        metric_value(&metrics, "bayonet_pool_leases_total") >= 1.0,
        "{metrics}"
    );
    assert!(
        metric_value(&metrics, "bayonet_pool_steals_total") > 0.0,
        "the big request never engaged the work-stealing expander:\n{metrics}"
    );
    assert!(
        metric_value(&metrics, "bayonet_engine_steals_total") > 0.0,
        "{metrics}"
    );

    handle.shutdown();
}

/// Concurrent batches against a saturated pool: every shed batch gets a
/// complete, buffered `503` (never chunked, never truncated), and after
/// the pool frees up a batch completes with well-formed chunked framing
/// all the way to the terminal zero chunk.
#[test]
fn saturated_pool_sheds_whole_batches_then_recovers() {
    // One worker and a one-slot queue make saturation deterministic even
    // on a loaded host; `BAYONET_TEST_THREADS` instead drives the per-item
    // `threads` knob of the recovery batch below.
    let handle = start(ServerConfig {
        threads: 1,
        queue_capacity: 1,
        io_timeout: Duration::from_secs(5),
        ..common::test_config()
    })
    .expect("start server");
    let addr = handle.addr();

    // Saturate: stall the single worker with a connection that never sends
    // a request, then park another in the queue's only slot.
    let stall = TcpStream::connect(addr).expect("stall connection");
    std::thread::sleep(Duration::from_millis(300));
    let parked = TcpStream::connect(addr).expect("parked connection");
    std::thread::sleep(Duration::from_millis(100));

    // Three concurrent batch clients hit the saturated server. The shed
    // happens in the accept loop — *before any request byte is read*, so
    // a rejected batch can never have started a chunked body. Each client
    // must see a complete buffered 503: a Content-Length, no
    // Transfer-Encoding, and a JSON body that parses whole. (The clients
    // hold their request back: the server closes the socket right after
    // the 503, and bytes it never read would turn that close into a
    // reset.)
    let shed: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut conn = TcpStream::connect(addr).expect("batch connection");
                conn.set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let mut raw = String::new();
                conn.read_to_string(&mut raw).expect("read shed response");
                raw
            })
        })
        .collect();
    for client in shed {
        let raw = client.join().expect("shed client");
        assert!(raw.starts_with("HTTP/1.1 503"), "{raw}");
        assert!(raw.contains("Content-Length:"), "{raw}");
        assert!(
            !raw.contains("Transfer-Encoding"),
            "a shed batch must never start a chunked body: {raw}"
        );
        let (_, payload) = raw.split_once("\r\n\r\n").expect("head/body split");
        let doc = parse_json(payload).expect("shed body parses whole");
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("overloaded"),
            "{raw}"
        );
    }

    // Release the worker; the parked (now closed) connection drains and
    // the server recovers.
    drop(stall);
    drop(parked);

    // A batch now completes — with `BAYONET_TEST_THREADS` driving the
    // items' exact-engine parallelism — and the raw wire bytes are
    // verified as well-formed chunked framing ending in the terminal zero
    // chunk (decode_chunked panics on any truncated or malformed chunk).
    // Draining the released connections is asynchronous, so poll through
    // any residual 503s for a bounded window instead of racing the worker.
    let batch_body = format!(
        r#"{{"source":{},"items":[{{"threads":{t}}},{{"threads":{t}}},{{"threads":{t}}}]}}"#,
        Json::Str(TINY.into()),
        t = common::test_threads().min(64)
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let (status, head, payload) = loop {
        let resp = common::http(addr, "POST", "/v1/batch", &batch_body);
        if resp.0 != 503 || std::time::Instant::now() >= deadline {
            break resp;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(status, 200, "{payload}");
    assert!(head.contains("Transfer-Encoding: chunked"), "{head}");
    assert!(
        payload.ends_with("0\r\n\r\n"),
        "missing terminal chunk: {payload:?}"
    );
    let frames = common::parse_frames(&common::decode_chunked(&payload));
    assert_eq!(frames.len(), 3, "{payload}");
    for frame in &frames {
        assert_eq!(frame.status, 200, "{}", frame.body);
        assert!(frame.body.contains("1/3"), "{}", frame.body);
    }

    // Shed batches recorded no batch work; the successful one recorded
    // exactly one.
    let metrics = common::metrics(addr);
    assert_eq!(metric_value(&metrics, "bayonet_batch_requests_total"), 1.0);
    assert_eq!(metric_value(&metrics, "bayonet_batch_items_total"), 3.0);

    handle.shutdown();
}
