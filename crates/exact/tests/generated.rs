//! Differential fuzzing: single- vs multi-threaded exact inference must
//! agree bit-for-bit on a population of randomly generated programs.
//!
//! Complements `tests/differential.rs` (which covers the curated examples)
//! with ~200 seeded random chain programs from
//! [`bayonet_lang::testgen::ProgramGen`] — flips, uniform draws, bounded
//! duplication, and soft observes, each explored once sequentially and
//! once with the work-stealing expander forced on.

use bayonet_exact::{analyze, Analysis, ExactError, ExactOptions};
use bayonet_lang::parse;
use bayonet_lang::testgen::ProgramGen;
use bayonet_net::{compile, scheduler_for};

mod common;

const SEEDS: u64 = 200;

fn run(source: &str, threads: usize) -> Result<Analysis, ExactError> {
    let program = parse(source).expect("generated programs parse");
    let model = compile(&program).expect("generated programs compile");
    let scheduler = scheduler_for(&model);
    let opts = ExactOptions {
        threads,
        // Force the parallel path even on small frontiers.
        par_threshold: 2,
        ..common::test_options()
    };
    analyze(&model, &*scheduler, &opts)
}

#[test]
fn generated_programs_agree_between_one_and_eight_threads() {
    let mut nontrivial = 0u32;
    for seed in 0..SEEDS {
        let source = ProgramGen::new(seed).generate();
        let single = run(&source, 1);
        let parallel = run(&source, 8);
        match (single, parallel) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.terminals, b.terminals, "seed {seed}:\n{source}");
                assert_eq!(a.discarded, b.discarded, "seed {seed}:\n{source}");
                assert_eq!(
                    (
                        a.stats.steps,
                        a.stats.expansions,
                        a.stats.peak_configs,
                        a.stats.merge_hits,
                        a.stats.terminal_configs
                    ),
                    (
                        b.stats.steps,
                        b.stats.expansions,
                        b.stats.peak_configs,
                        b.stats.merge_hits,
                        b.stats.terminal_configs
                    ),
                    "seed {seed}: deterministic stats diverge\n{source}"
                );
                if a.terminals.len() > 1 {
                    nontrivial += 1;
                }
            }
            // Both runs must fail identically, too.
            (Err(ea), Err(eb)) => assert_eq!(
                format!("{ea}"),
                format!("{eb}"),
                "seed {seed}: errors diverge\n{source}"
            ),
            (a, b) => panic!(
                "seed {seed}: one run failed, the other did not \
                 (single: {a:?}, parallel: {b:?})\n{source}"
            ),
        }
    }
    // The generator must produce real probabilistic branching, not a pile
    // of degenerate single-terminal programs.
    assert!(
        nontrivial > SEEDS as u32 / 4,
        "only {nontrivial}/{SEEDS} programs had multiple terminal configs"
    );
}
