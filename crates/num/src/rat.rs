//! Exact rational numbers.
//!
//! [`Rat`] is the value domain of the Bayonet semantics (`Vals = Q`, paper
//! Figure 4) and the probability domain of the exact inference engine. All
//! operations are exact; values are kept in lowest terms with a positive
//! denominator.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

use crate::bigint::{BigInt, Sign};
use crate::biguint::{BigUint, ParseNumError};

/// An exact rational number in lowest terms.
///
/// Invariants: the denominator is strictly positive, `gcd(|num|, den) == 1`,
/// and zero is represented as `0/1`.
///
/// # Examples
///
/// ```
/// use bayonet_num::Rat;
///
/// let half = Rat::ratio(1, 2);
/// let third = Rat::ratio(1, 3);
/// assert_eq!(&half + &third, Rat::ratio(5, 6));
/// assert_eq!((&half * &third).to_string(), "1/6");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rat {
    num: BigInt,
    den: BigUint,
}

impl Rat {
    /// The value 0.
    pub fn zero() -> Self {
        Rat {
            num: BigInt::zero(),
            den: BigUint::one(),
        }
    }

    /// The value 1.
    pub fn one() -> Self {
        Rat {
            num: BigInt::one(),
            den: BigUint::one(),
        }
    }

    /// Builds `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        let num = if den.is_negative() { -num } else { num };
        let den = den.into_magnitude();
        let mut r = Rat { num, den };
        r.reduce();
        r
    }

    /// Builds `num / den` from machine integers.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn ratio(num: i64, den: i64) -> Self {
        Rat::new(BigInt::from(num), BigInt::from(den))
    }

    /// Builds an integer-valued rational.
    pub fn int(v: i64) -> Self {
        Rat {
            num: BigInt::from(v),
            den: BigUint::one(),
        }
    }

    fn reduce(&mut self) {
        if self.num.is_zero() {
            self.den = BigUint::one();
            return;
        }
        let g = self.num.magnitude().gcd(&self.den);
        if !g.is_one() {
            let (nm, _) = self.num.magnitude().div_rem(&g);
            let (dm, _) = self.den.div_rem(&g);
            self.num = BigInt::from_sign_magnitude(self.num.sign(), nm);
            self.den = dm;
        }
    }

    /// The numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// The (strictly positive) denominator.
    pub fn denom(&self) -> &BigUint {
        &self.den
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.num.is_one() && self.den.is_one()
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` if the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// The sign of the value.
    pub fn sign(&self) -> Sign {
        self.num.sign()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rat {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rat {
            num: BigInt::from_sign_magnitude(self.num.sign(), self.den.clone()),
            den: self.num.magnitude().clone(),
        }
    }

    /// `self / other`, or `None` if `other` is zero.
    pub fn checked_div(&self, other: &Rat) -> Option<Rat> {
        if other.is_zero() {
            None
        } else {
            Some(self * &other.recip())
        }
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&BigInt::from(self.den.clone()));
        if r.is_negative() {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        -((-self).floor())
    }

    /// Converts to `i64` if the value is an integer that fits.
    pub fn to_i64(&self) -> Option<i64> {
        if self.is_integer() {
            self.num.to_i64()
        } else {
            None
        }
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        // Scale so both operands fit comfortably in f64 before dividing.
        let nb = self.num.magnitude().bits() as i64;
        let db = self.den.bits() as i64;
        let shift = (nb.max(db) - 900).max(0) as u64;
        let n = (self.num.magnitude() >> shift).to_f64();
        let d = (&self.den >> shift).to_f64();
        let q = if d == 0.0 { f64::INFINITY } else { n / d };
        if self.is_negative() {
            -q
        } else {
            q
        }
    }

    /// Raises `self` to an integer power (negative powers invert).
    ///
    /// # Panics
    ///
    /// Panics when raising zero to a negative power.
    pub fn pow(&self, exp: i32) -> Rat {
        if exp < 0 {
            return self.recip().pow(-exp);
        }
        Rat {
            num: self.num.pow(exp as u32),
            den: self.den.pow(exp as u32),
        }
    }

    /// `1 - self`, without materializing the constant one.
    ///
    /// The hot use is complementing a branch probability: `(b - a)/b` is
    /// already in lowest terms because `gcd(b - a, b) = gcd(a, b) = 1`, so
    /// no GCD runs at all.
    ///
    /// # Examples
    ///
    /// ```
    /// use bayonet_num::Rat;
    ///
    /// assert_eq!(Rat::ratio(3, 10).complement(), Rat::ratio(7, 10));
    /// assert_eq!(Rat::one().complement(), Rat::zero());
    /// ```
    pub fn complement(&self) -> Rat {
        Rat {
            num: BigInt::from(self.den.clone()) - &self.num,
            den: self.den.clone(),
        }
    }

    /// Truthiness under the Bayonet convention: any nonzero value is true.
    pub fn is_true(&self) -> bool {
        !self.is_zero()
    }

    /// 0/1 encoding of a boolean, the value domain of comparisons.
    pub fn from_bool(b: bool) -> Rat {
        if b {
            Rat::one()
        } else {
            Rat::zero()
        }
    }

    /// The numerator magnitude and denominator as machine words, when both
    /// fit. Signs are handled by the callers.
    #[inline]
    fn small_parts(&self) -> Option<(u64, u64)> {
        Some((self.num.magnitude().to_u64()?, self.den.to_u64()?))
    }

    /// Word-sized path for `self + (rhs_sign / |other|)`: cross products in
    /// `u128` and a binary GCD, with no heap traffic until the result is
    /// wrapped. `None` when a component exceeds a word or the same-sign sum
    /// overflows `u128` (the limb path takes over).
    fn add_small(&self, other: &Rat, rhs_sign: Sign) -> Option<Rat> {
        let (an, ad) = self.small_parts()?;
        let (bn, bd) = other.small_parts()?;
        let l = an as u128 * bd as u128; // |a|·d
        let r = bn as u128 * ad as u128; // |c|·b
        let den = ad as u128 * bd as u128;
        let (mag, sign) = match (self.num.sign(), rhs_sign) {
            (Sign::Zero, s) => (r, s),
            (s, Sign::Zero) => (l, s),
            (sa, sb) if sa == sb => (l.checked_add(r)?, sa),
            (sa, sb) => match l.cmp(&r) {
                Ordering::Greater => (l - r, sa),
                Ordering::Less => (r - l, sb),
                Ordering::Equal => (0, Sign::Zero),
            },
        };
        if mag == 0 {
            return Some(Rat::zero());
        }
        let g = gcd_u128(mag, den);
        Some(Rat {
            num: BigInt::from_sign_magnitude(sign, BigUint::from(mag / g)),
            den: BigUint::from(den / g),
        })
    }

    /// Limb path for addition: `a/b + c/d = (a*d + c*b) / (b*d)`, then reduce.
    fn add_big(&self, other: &Rat) -> Rat {
        let num = &self.num * &BigInt::from(other.den.clone())
            + &other.num * &BigInt::from(self.den.clone());
        let den = &self.den * &other.den;
        let mut r = Rat { num, den };
        r.reduce();
        r
    }

    fn add_ref(&self, other: &Rat) -> Rat {
        self.add_small(other, other.num.sign())
            .unwrap_or_else(|| self.add_big(other))
    }

    /// Word-sized path for multiplication. After cross-reducing with two
    /// `u64` GCDs the products are provably in lowest terms and fit `u128`,
    /// so there is no overflow fallback and no final reduction.
    fn mul_small(&self, other: &Rat) -> Option<Rat> {
        let (an, ad) = self.small_parts()?;
        let (bn, bd) = other.small_parts()?;
        if an == 0 || bn == 0 {
            return Some(Rat::zero());
        }
        let g1 = BigUint::gcd_u64(an, bd);
        let g2 = BigUint::gcd_u64(bn, ad);
        let mag = (an / g1) as u128 * (bn / g2) as u128;
        let den = (ad / g2) as u128 * (bd / g1) as u128;
        let sign = if self.num.sign() == other.num.sign() {
            Sign::Plus
        } else {
            Sign::Minus
        };
        Some(Rat {
            num: BigInt::from_sign_magnitude(sign, BigUint::from(mag)),
            den: BigUint::from(den),
        })
    }

    /// Limb path for multiplication: cross-reduce before multiplying to
    /// keep intermediates small.
    fn mul_big(&self, other: &Rat) -> Rat {
        let g1 = self.num.magnitude().gcd(&other.den);
        let g2 = other.num.magnitude().gcd(&self.den);
        let (n1, _) = self.num.magnitude().div_rem(&g1);
        let (d2, _) = other.den.div_rem(&g1);
        let (n2, _) = other.num.magnitude().div_rem(&g2);
        let (d1, _) = self.den.div_rem(&g2);
        let mag = &n1 * &n2;
        let sign = match (self.num.sign(), other.num.sign()) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Plus,
            _ => Sign::Minus,
        };
        Rat {
            num: BigInt::from_sign_magnitude(if mag.is_zero() { Sign::Zero } else { sign }, mag),
            den: &d1 * &d2,
        }
    }

    fn mul_ref(&self, other: &Rat) -> Rat {
        self.mul_small(other).unwrap_or_else(|| self.mul_big(other))
    }
}

/// Binary GCD over `u128`; both operands must be nonzero.
fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    debug_assert!(a != 0 && b != 0);
    let common = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << common;
        }
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::zero()
    }
}

impl From<BigInt> for Rat {
    fn from(num: BigInt) -> Self {
        Rat {
            num,
            den: BigUint::one(),
        }
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Self {
        Rat::int(v)
    }
}

impl From<u32> for Rat {
    fn from(v: u32) -> Self {
        Rat::int(v as i64)
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // Signs decide first (`Minus < Zero < Plus` by declaration order);
        // equal-sign word-sized values compare by exact u128 cross products.
        let sa = self.num.sign();
        let sb = other.num.sign();
        if sa != sb {
            return sa.cmp(&sb);
        }
        if let (Some((an, ad)), Some((bn, bd))) = (self.small_parts(), other.small_parts()) {
            let l = an as u128 * bd as u128;
            let r = bn as u128 * ad as u128;
            return if sa == Sign::Minus {
                r.cmp(&l)
            } else {
                l.cmp(&r)
            };
        }
        // a/b vs c/d  <=>  a*d vs c*b  (b, d > 0).
        let lhs = &self.num * &BigInt::from(other.den.clone());
        let rhs = &other.num * &BigInt::from(self.den.clone());
        lhs.cmp(&rhs)
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Neg for &Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

macro_rules! forward_rat_binop {
    ($trait:ident, $method:ident, $impl_fn:expr) => {
        impl $trait<&Rat> for &Rat {
            type Output = Rat;
            fn $method(self, rhs: &Rat) -> Rat {
                let f: fn(&Rat, &Rat) -> Rat = $impl_fn;
                f(self, rhs)
            }
        }
        impl $trait<Rat> for Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&Rat> for Rat {
            type Output = Rat;
            fn $method(self, rhs: &Rat) -> Rat {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<Rat> for &Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                $trait::$method(self, &rhs)
            }
        }
    };
}

forward_rat_binop!(Add, add, |a, b| a.add_ref(b));
forward_rat_binop!(Sub, sub, |a, b| {
    // Flip the sign at the call instead of materializing `-b`.
    a.add_small(b, b.num.sign().negate())
        .unwrap_or_else(|| a.add_big(&-b))
});
forward_rat_binop!(Mul, mul, |a, b| a.mul_ref(b));
forward_rat_binop!(Div, div, |a, b| {
    a.checked_div(b).expect("rational division by zero")
});

// The assign ops write the word-sized result straight into the receiver's
// fields — no operand clones, no temporary `Rat`, no heap traffic. Only
// multi-limb operands fall back to the allocating limb path, whose
// algorithms need a separate output buffer anyway.

impl AddAssign<&Rat> for Rat {
    fn add_assign(&mut self, rhs: &Rat) {
        if let Some(r) = self.add_small(rhs, rhs.num.sign()) {
            self.num = r.num;
            self.den = r.den;
        } else {
            *self = self.add_big(rhs);
        }
    }
}

impl SubAssign<&Rat> for Rat {
    fn sub_assign(&mut self, rhs: &Rat) {
        if let Some(r) = self.add_small(rhs, rhs.num.sign().negate()) {
            self.num = r.num;
            self.den = r.den;
        } else {
            *self = self.add_big(&-rhs);
        }
    }
}

impl MulAssign<&Rat> for Rat {
    fn mul_assign(&mut self, rhs: &Rat) {
        if let Some(r) = self.mul_small(rhs) {
            self.num = r.num;
            self.den = r.den;
        } else {
            *self = self.mul_big(rhs);
        }
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rat({self})")
    }
}

impl FromStr for Rat {
    type Err = ParseNumError;

    /// Parses `"a"`, `"a/b"`, or a decimal like `"0.125"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some((n, d)) = s.split_once('/') {
            let num: BigInt = n.trim().parse()?;
            let den: BigInt = d.trim().parse()?;
            if den.is_zero() {
                return Err(ParseNumError::new("zero denominator"));
            }
            return Ok(Rat::new(num, den));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            let negative = int_part.trim_start().starts_with('-');
            let int_val: BigInt = if int_part.is_empty() || int_part == "-" {
                BigInt::zero()
            } else {
                int_part.parse()?
            };
            let frac_mag: BigUint = frac_part.parse()?;
            let scale = BigUint::from(10u64).pow(frac_part.len() as u32);
            let frac = Rat::new(BigInt::from(frac_mag), BigInt::from(scale));
            let base = Rat::from(int_val);
            return Ok(if negative { base - frac } else { base + frac });
        }
        Ok(Rat::from(s.parse::<BigInt>()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rat {
        Rat::ratio(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Rat::zero());
        assert_eq!(r(0, -5).to_string(), "0");
    }

    #[test]
    fn field_laws_small() {
        let vals = [
            r(-3, 2),
            r(-1, 3),
            Rat::zero(),
            r(1, 7),
            Rat::one(),
            r(5, 2),
        ];
        for a in &vals {
            for b in &vals {
                assert_eq!(a + b, b + a);
                assert_eq!(a * b, b * a);
                for c in &vals {
                    assert_eq!(&(a + b) + c, a + &(b + c));
                    assert_eq!(a * &(b + c), &(a * b) + &(a * c));
                }
            }
        }
    }

    #[test]
    fn arithmetic_examples() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), Rat::int(2));
    }

    #[test]
    fn comparison() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 7) == Rat::one());
        assert!(r(2, 1) > r(1000, 501));
    }

    #[test]
    fn recip_and_checked_div() {
        assert_eq!(r(3, 4).recip(), r(4, 3));
        assert_eq!(r(-3, 4).recip(), r(-4, 3));
        assert_eq!(Rat::one().checked_div(&Rat::zero()), None);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), BigInt::from(3));
        assert_eq!(r(7, 2).ceil(), BigInt::from(4));
        assert_eq!(r(-7, 2).floor(), BigInt::from(-4));
        assert_eq!(r(-7, 2).ceil(), BigInt::from(-3));
        assert_eq!(Rat::int(5).floor(), BigInt::from(5));
        assert_eq!(Rat::int(5).ceil(), BigInt::from(5));
    }

    #[test]
    fn pow_negative_exponent() {
        assert_eq!(r(2, 3).pow(-2), r(9, 4));
        assert_eq!(r(2, 3).pow(0), Rat::one());
        assert_eq!(r(2, 3).pow(3), r(8, 27));
    }

    #[test]
    fn parse_forms() {
        assert_eq!("3/6".parse::<Rat>().unwrap(), r(1, 2));
        assert_eq!("-3/6".parse::<Rat>().unwrap(), r(-1, 2));
        assert_eq!("0.25".parse::<Rat>().unwrap(), r(1, 4));
        assert_eq!("-0.5".parse::<Rat>().unwrap(), r(-1, 2));
        assert_eq!("42".parse::<Rat>().unwrap(), Rat::int(42));
        assert!("1/0".parse::<Rat>().is_err());
    }

    #[test]
    fn display() {
        assert_eq!(r(1, 2).to_string(), "1/2");
        assert_eq!(Rat::int(-7).to_string(), "-7");
    }

    #[test]
    fn to_f64() {
        assert_eq!(r(1, 2).to_f64(), 0.5);
        assert_eq!(r(-1, 4).to_f64(), -0.25);
        // A ratio of two huge numbers still converts accurately.
        let big = Rat::new(
            BigInt::from(3) * BigInt::from(10).pow(50),
            BigInt::from(2) * BigInt::from(10).pow(50),
        );
        assert_eq!(big.to_f64(), 1.5);
    }

    #[test]
    fn paper_congestion_fraction_displays_exactly() {
        // The paper's Section 2.2 exact congestion probability.
        let p: Rat = "30378810105265/67706637778944".parse().unwrap();
        assert!((p.to_f64() - 0.4487).abs() < 1e-4);
        assert_eq!(p.to_string(), "30378810105265/67706637778944");
    }

    #[test]
    fn complement_matches_one_minus() {
        for v in [Rat::zero(), Rat::one(), r(3, 10), r(-2, 3), r(7, 2)] {
            assert_eq!(v.complement(), &Rat::one() - &v);
        }
    }

    #[test]
    fn assign_ops_match_operators() {
        let big = Rat::new(
            BigInt::from(7) * BigInt::from(10).pow(40),
            BigInt::from(3) * BigInt::from(10).pow(20) + BigInt::one(),
        );
        let vals = [r(-3, 2), Rat::zero(), r(1, 7), r(5, 2), big];
        for a in &vals {
            for b in &vals {
                let mut x = a.clone();
                x += b;
                assert_eq!(x, a + b);
                let mut x = a.clone();
                x -= b;
                assert_eq!(x, a - b);
                let mut x = a.clone();
                x *= b;
                assert_eq!(x, a * b);
            }
        }
    }

    #[test]
    fn small_path_overflow_falls_back() {
        // Same-sign addition whose u128 cross-product sum overflows: both
        // numerators and denominators are near-maximal machine words, so
        // each cross product alone is close to 2^128.
        let a = Rat::new(
            BigInt::from(u64::MAX as i128),
            BigInt::from((u64::MAX - 2) as i128),
        );
        let b = Rat::new(
            BigInt::from((u64::MAX - 2) as i128),
            BigInt::from((u64::MAX - 4) as i128),
        );
        let s = &a + &b;
        assert_eq!(&s - &b, a);
        let mut t = a.clone();
        t += &b;
        assert_eq!(t, s);
    }

    #[test]
    fn truthiness() {
        assert!(!Rat::zero().is_true());
        assert!(r(1, 100).is_true());
        assert!(r(-1, 100).is_true());
        assert_eq!(Rat::from_bool(true), Rat::one());
        assert_eq!(Rat::from_bool(false), Rat::zero());
    }
}
