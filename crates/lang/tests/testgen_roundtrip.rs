//! Round-trip property: for every generated program, `parse → pretty →
//! parse` succeeds and pretty-printing is a fixpoint (the canonical form
//! the serve cache keys on is stable).

use bayonet_lang::testgen::ProgramGen;
use bayonet_lang::{check, parse, pretty_program};

#[test]
fn two_hundred_generated_programs_round_trip() {
    for seed in 0..200u64 {
        let source = ProgramGen::new(seed).generate();
        let program = parse(&source).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{source}"));
        let canonical = pretty_program(&program);
        let reparsed = parse(&canonical).unwrap_or_else(|e| {
            panic!("seed {seed}: canonical form fails to parse: {e}\n{canonical}")
        });
        assert_eq!(
            program, reparsed,
            "seed {seed}: pretty-printing changed the AST\n{canonical}"
        );
        assert_eq!(
            canonical,
            pretty_program(&reparsed),
            "seed {seed}: pretty-printing is not a fixpoint"
        );
        // Generated programs are also semantically well-formed.
        check(&program)
            .unwrap_or_else(|errs| panic!("seed {seed}: integrity errors {errs:?}\n{canonical}"));
    }
}
