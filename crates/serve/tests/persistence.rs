//! In-process persistence tests: a server restarted on the same
//! `--cache-dir` must serve byte-identical cached results without
//! recomputing, and corrupt segment records must be skipped (counted,
//! never fatal).

use bayonet_serve::{start, ServerConfig, SEGMENT_FILE};

mod common;
use common::{metric, metrics, post_run, unique_dir, TINY};

fn config_with_dir(dir: &std::path::Path) -> ServerConfig {
    ServerConfig {
        cache_dir: Some(dir.to_path_buf()),
        ..common::test_config()
    }
}

#[test]
fn warm_reload_serves_identical_bytes_without_recomputation() {
    let dir = unique_dir("persist-warm");

    // First life: compute once, which must hit the engine and then be
    // persisted. Graceful shutdown flushes the write-behind queue.
    let handle = start(config_with_dir(&dir)).expect("start server");
    let (status, first) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{first}");
    let text = metrics(handle.addr());
    assert!(metric(&text, "bayonet_engine_expansions_total") > 0);
    assert_eq!(metric(&text, "bayonet_cache_persist_load_ok_total"), 0);
    handle.shutdown();

    let segment = dir.join(SEGMENT_FILE);
    assert!(segment.is_file(), "no segment at {}", segment.display());

    // Second life: the result comes back from disk — same bytes, zero
    // engine work, and the hit is visible in the metrics.
    let handle = start(config_with_dir(&dir)).expect("restart server");
    let text = metrics(handle.addr());
    assert!(metric(&text, "bayonet_cache_persist_load_ok_total") >= 1);
    assert_eq!(metric(&text, "bayonet_cache_persist_load_corrupt_total"), 0);

    let (status, second) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{second}");
    assert_eq!(first, second, "persisted result must be byte-identical");

    let text = metrics(handle.addr());
    assert_eq!(metric(&text, "bayonet_cache_hits_total"), 1);
    assert_eq!(metric(&text, "bayonet_engine_expansions_total"), 0);
    handle.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_record_is_skipped_and_counted() {
    let dir = unique_dir("persist-flip");

    let handle = start(config_with_dir(&dir)).expect("start server");
    let (status, body) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{body}");
    handle.shutdown();

    // Flip one byte inside the record payload (header is 8 bytes, each
    // record carries an 8-byte frame and an 8-byte key before the body).
    let segment = dir.join(SEGMENT_FILE);
    let mut bytes = std::fs::read(&segment).expect("read segment");
    assert!(bytes.len() > 32, "segment too small: {}", bytes.len());
    bytes[30] ^= 0x40;
    std::fs::write(&segment, &bytes).expect("rewrite segment");

    // The damaged record is skipped — not loaded, not fatal — and the
    // server recomputes the same answer from scratch.
    let handle = start(config_with_dir(&dir)).expect("restart server");
    let text = metrics(handle.addr());
    assert!(metric(&text, "bayonet_cache_persist_load_corrupt_total") >= 1);
    assert_eq!(metric(&text, "bayonet_cache_persist_load_ok_total"), 0);

    let (status, recomputed) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{recomputed}");
    assert_eq!(body, recomputed, "recompute must match the original");
    let text = metrics(handle.addr());
    assert_eq!(metric(&text, "bayonet_cache_hits_total"), 0);
    assert!(metric(&text, "bayonet_engine_expansions_total") > 0);
    handle.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_is_truncated_and_the_server_recovers() {
    let dir = unique_dir("persist-torn");

    let handle = start(config_with_dir(&dir)).expect("start server");
    let (status, body) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{body}");
    handle.shutdown();

    // Chop a few bytes off the tail, as a crash mid-append would.
    let segment = dir.join(SEGMENT_FILE);
    let bytes = std::fs::read(&segment).expect("read segment");
    std::fs::write(&segment, &bytes[..bytes.len() - 3]).expect("truncate");

    let handle = start(config_with_dir(&dir)).expect("restart server");
    let text = metrics(handle.addr());
    assert!(metric(&text, "bayonet_cache_persist_load_corrupt_total") >= 1);

    // The torn record was discarded and the segment re-framed: a new
    // result appends cleanly and survives the *next* restart.
    let (status, recomputed) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{recomputed}");
    assert_eq!(body, recomputed);
    handle.shutdown();

    let handle = start(config_with_dir(&dir)).expect("third start");
    let text = metrics(handle.addr());
    assert!(metric(&text, "bayonet_cache_persist_load_ok_total") >= 1);
    let (status, replayed) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{replayed}");
    assert_eq!(body, replayed);
    let text = metrics(handle.addr());
    assert_eq!(metric(&text, "bayonet_cache_hits_total"), 1);
    handle.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persistence_off_exposes_no_persist_metrics_and_writes_nothing() {
    let handle = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: None,
        ..ServerConfig::default()
    })
    .expect("start server");
    let (status, body) = post_run(handle.addr(), TINY);
    assert_eq!(status, 200, "{body}");
    let text = metrics(handle.addr());
    assert!(!text.contains("bayonet_cache_persist_"), "{text}");
    // The always-on eviction counter is still exported.
    assert_eq!(metric(&text, "bayonet_cache_evictions_total"), 0);
    handle.shutdown();
}

/// Batch items persist through the same write-behind path as single runs:
/// a batch computed in one life is served from disk in the next, item for
/// item, byte for byte.
#[test]
fn batch_results_survive_a_restart() {
    let dir = unique_dir("persist-batch");
    let batch_body = format!(
        r#"{{"source":{},"items":[{{}},{{"engine":"smc","particles":60,"seed":7}}]}}"#,
        bayonet_serve::Json::Str(TINY.into())
    );

    let handle = start(config_with_dir(&dir)).expect("start server");
    let (status, payload) = common::post_batch(handle.addr(), &batch_body);
    assert_eq!(status, 200, "{payload}");
    let mut first = common::parse_frames(&payload);
    first.sort_by_key(|f| f.index);
    assert_eq!(first.len(), 2);
    handle.shutdown();

    // Second life: both items come back from disk with identical bytes
    // and zero engine work.
    let handle = start(config_with_dir(&dir)).expect("restart server");
    let text = metrics(handle.addr());
    assert!(metric(&text, "bayonet_cache_persist_load_ok_total") >= 2);

    let (status, payload) = common::post_batch(handle.addr(), &batch_body);
    assert_eq!(status, 200, "{payload}");
    let mut second = common::parse_frames(&payload);
    second.sort_by_key(|f| f.index);
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.body, b.body, "item {} changed across restart", a.index);
    }
    let text = metrics(handle.addr());
    assert_eq!(metric(&text, "bayonet_cache_hits_total"), 2);
    assert_eq!(metric(&text, "bayonet_engine_expansions_total"), 0);
    handle.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}
