//! End-to-end tests of the `bayonet` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn bay_file(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // repo root
    p.push("examples/bay");
    p.push(name);
    p.to_string_lossy().into_owned()
}

fn cli(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bayonet"))
        .args(args)
        .output()
        .expect("spawn bayonet CLI");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn check_accepts_valid_files() {
    let (ok, stdout, _) = cli(&["check", &bay_file("gossip_k4.bay")]);
    assert!(ok);
    assert!(stdout.contains("ok: 0 warning(s)"), "{stdout}");
}

#[test]
fn run_exact_gossip() {
    let (ok, stdout, _) = cli(&["run", &bay_file("gossip_k4.bay")]);
    assert!(ok);
    assert!(stdout.contains("94/27"), "{stdout}");
}

#[test]
fn run_with_bind_and_smc() {
    let (ok, stdout, _) = cli(&[
        "run",
        &bay_file("lossy_link.bay"),
        "--bind",
        "P_LOSS=1/2",
        "--engine",
        "smc",
        "--particles",
        "500",
        "--seed",
        "9",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("got@H1"), "{stdout}");
}

#[test]
fn run_unbound_parameter_fails_cleanly() {
    let (ok, _, stderr) = cli(&[
        "run",
        &bay_file("lossy_link.bay"),
        "--engine",
        "smc",
    ]);
    assert!(!ok);
    assert!(stderr.contains("error:"), "{stderr}");
}

#[test]
fn synthesize_prints_the_figure3_table() {
    let (ok, stdout, _) = cli(&["synthesize", &bay_file("ecmp_costs.bay")]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("COST_01 - COST_02 - COST_21 == 0"), "{stdout}");
    assert!(stdout.contains("30378810105265/67706637778944"), "{stdout}");
}

#[test]
fn codegen_targets() {
    let (ok, psi, _) = cli(&["codegen", &bay_file("gossip_k4.bay"), "--target", "psi"]);
    assert!(ok);
    assert!(psi.contains("dat Network"), "{psi}");
    let (ok, webppl, _) = cli(&["codegen", &bay_file("gossip_k4.bay"), "--target", "webppl"]);
    assert!(ok);
    assert!(webppl.contains("Infer({method: 'SMC'"), "{webppl}");
}

#[test]
fn pretty_is_reparseable_by_check() {
    let (ok, pretty, _) = cli(&["pretty", &bay_file("ecmp_costs.bay")]);
    assert!(ok);
    // Feed the pretty output back through the front-end.
    let program = bayonet::parse(&pretty).expect("pretty output parses");
    assert!(bayonet::check(&program).is_ok());
}

#[test]
fn simulate_renders_a_log() {
    let (ok, stdout, _) = cli(&[
        "run",
        &bay_file("gossip_k4.bay"),
        "--engine",
        "simulate",
        "--seed",
        "1",
    ]);
    assert!(ok);
    assert!(stdout.contains("Run  S0"), "{stdout}");
    assert!(stdout.contains("terminal"), "{stdout}");
}

#[test]
fn unknown_flags_and_commands_error() {
    let (ok, _, stderr) = cli(&["frobnicate", &bay_file("gossip_k4.bay")]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");
    let (ok, _, stderr) = cli(&["run", &bay_file("gossip_k4.bay"), "--engine", "magic"]);
    assert!(!ok);
    assert!(stderr.contains("unknown engine"), "{stderr}");
}
