//! Model-optimization pass pipeline.
//!
//! [`optimize`] runs a fixed sequence of semantics-preserving passes over a
//! compiled [`Model`] and attaches an [`OptInfo`] describing what happened:
//!
//! * **constant folding / guard hoisting** ([`fold`]) — folds constant
//!   subexpressions and constant-valued guards (`if`, `while`, `assert`,
//!   `observe`) so the enumerator never branches on them, and hoists
//!   loop-invariant local bindings out of `while` bodies;
//! * **dead-flip elimination** ([`dead_flip`]) — removes `flip` /
//!   `uniformInt` sites (and other total assignments) whose results are
//!   never read by the handler or any query, an exponential frontier cut
//!   per removed site;
//! * **topology symmetry reduction** ([`symmetry`]) — finds the
//!   automorphism group of the compiled topology (program equality +
//!   port-consistent adjacency permutations) so the exact engines can
//!   canonicalize frontier configurations by orbit representative.
//!
//! Every pass is **binding-independent**: parameters are never folded, so
//! one optimized model serves every batch item and sweep point regardless
//! of its bindings. Posteriors (query results, `Z`, discarded mass) are
//! bit-identical to the unoptimized run; only engine statistics (steps,
//! expansions, peak frontier) change — that is the win.

mod dead_flip;
mod facts;
mod fold;
mod symmetry;

use std::fmt::Write as _;
use std::sync::Arc;

use crate::compile::Model;

pub use facts::{model_facts, ModelFacts};
pub use symmetry::SymmetryGroup;

/// Which passes to run. All passes default to on; the CLI's `--no-opt` and
/// the serve API's `"passes": false` skip [`optimize`] entirely instead of
/// toggling individual passes.
#[derive(Debug, Clone)]
pub struct PassConfig {
    /// Constant folding + guard folding + loop-invariant hoisting.
    pub fold: bool,
    /// Dead-flip / dead-assignment elimination.
    pub dead_flip: bool,
    /// Topology symmetry (automorphism orbit) detection.
    pub symmetry: bool,
}

impl Default for PassConfig {
    fn default() -> Self {
        PassConfig {
            fold: true,
            dead_flip: true,
            symmetry: true,
        }
    }
}

/// Per-pass statistics, rendered by `--explain-passes` and exported as
/// `bayonet_opt_*` metrics by the serve layer.
#[derive(Debug, Clone, Default)]
pub struct OptReport {
    /// Number of pass executions (fold and dead-flip iterate to fixpoint).
    pub pass_runs: u64,
    /// Constant subexpressions folded.
    pub consts_folded: u64,
    /// Constant-valued guards folded (`if`/`while`/`assert`/`observe`).
    pub guards_folded: u64,
    /// Loop-invariant local bindings hoisted out of `while` bodies.
    pub hoisted: u64,
    /// Dead statements removed.
    pub dead_stmts: u64,
    /// `flip`/`uniformInt` sites eliminated (dead statements + zeroed
    /// state initializers).
    pub flips_eliminated: u64,
    /// Randomized state initializers of dead slots replaced by `0`.
    pub inits_zeroed: u64,
    /// Order of the detected automorphism group (1 = trivial).
    pub group_order: usize,
    /// Non-trivial node orbits under the group (singletons omitted).
    pub orbits: Vec<Vec<usize>>,
    /// Why the group is trivial, or how it was found.
    pub symmetry_note: String,
}

impl OptReport {
    /// Multi-line human-readable rendering (the CLI's `--explain-passes`).
    pub fn explain(&self, node_names: &[String]) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "passes: {} pass runs", self.pass_runs);
        let _ = writeln!(
            out,
            "  fold: {} constants folded, {} guards folded, {} bindings hoisted",
            self.consts_folded, self.guards_folded, self.hoisted
        );
        let _ = writeln!(
            out,
            "  dead-flip: {} dead statements removed ({} random sites eliminated, \
             {} randomized initializers zeroed)",
            self.dead_stmts, self.flips_eliminated, self.inits_zeroed
        );
        let _ = writeln!(
            out,
            "  symmetry: group order {} ({})",
            self.group_order, self.symmetry_note
        );
        for orbit in &self.orbits {
            let names: Vec<&str> = orbit
                .iter()
                .map(|&i| node_names.get(i).map(String::as_str).unwrap_or("?"))
                .collect();
            let _ = writeln!(out, "    orbit: {{{}}}", names.join(", "));
        }
        out
    }
}

/// Everything the pass pipeline learned about a model: the pass report, the
/// cost-model facts (one traversal, reused by the planner), and the
/// symmetry group the engines canonicalize with.
#[derive(Debug)]
pub struct OptInfo {
    /// What each pass did.
    pub report: OptReport,
    /// Cost-model signals gathered in the same traversal (see
    /// [`model_facts`]); the planner consumes these instead of re-walking
    /// the model.
    pub facts: ModelFacts,
    /// The automorphism group, when non-trivial.
    pub symmetry: Option<SymmetryGroup>,
}

/// Runs the default pass pipeline over `model`, returning the optimized
/// model with an [`OptInfo`] attached (see [`Model::opt_info`]).
///
/// The input model is not modified; programs that no pass touches stay
/// shared with the input via [`Arc`].
pub fn optimize(model: &Model) -> Model {
    optimize_with(model, &PassConfig::default())
}

/// Runs the pass pipeline with an explicit [`PassConfig`].
pub fn optimize_with(model: &Model, cfg: &PassConfig) -> Model {
    let mut m = model.clone();
    let mut report = OptReport::default();
    // Fold and dead-flip enable each other (folding a guard exposes dead
    // assignments; removing dead reads exposes further dead slots), so they
    // iterate to a fixpoint. The bound is a safety net; two or three rounds
    // settle every realistic program.
    for _ in 0..8 {
        let mut changed = false;
        if cfg.fold {
            report.pass_runs += 1;
            changed |= fold::run(&mut m, &mut report);
        }
        if cfg.dead_flip {
            report.pass_runs += 1;
            changed |= dead_flip::run(&mut m, &mut report);
        }
        if !changed {
            break;
        }
    }
    let symmetry = if cfg.symmetry {
        report.pass_runs += 1;
        let (group, note) = symmetry::find_symmetry(&m);
        report.symmetry_note = note;
        match &group {
            Some(g) => {
                report.group_order = g.order();
                report.orbits = g.orbits().into_iter().filter(|o| o.len() > 1).collect();
            }
            None => report.group_order = 1,
        }
        group
    } else {
        report.group_order = 1;
        report.symmetry_note = "symmetry pass disabled".into();
        None
    };
    let facts = facts::model_facts(&m);
    m.opt_info = Some(Arc::new(OptInfo {
        report,
        facts,
        symmetry,
    }));
    m
}
