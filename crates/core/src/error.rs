//! The unified error type of the public API.

use std::fmt;

use bayonet_approx::ApproxError;
use bayonet_exact::ExactError;
use bayonet_lang::LangError;
use bayonet_net::{CompileError, SemanticsError};
use bayonet_psi::{PsiError, TranslateError};

/// Any error the Bayonet system can produce, from parsing through inference.
#[derive(Debug)]
pub enum Error {
    /// Lexing or parsing failed.
    Parse(LangError),
    /// Static integrity checking failed (paper §4); all violations listed.
    Check(Vec<LangError>),
    /// Compilation to the executable model failed.
    Compile(CompileError),
    /// A runtime semantic error.
    Semantics(SemanticsError),
    /// The exact engine failed.
    Exact(ExactError),
    /// The approximate engine failed.
    Approx(ApproxError),
    /// The PSI backend failed.
    Psi(PsiError),
    /// Translation to the PSI backend failed.
    Translate(TranslateError),
    /// A bad argument to the public API.
    Usage(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::Check(errs) => {
                writeln!(f, "integrity check failed with {} error(s):", errs.len())?;
                for e in errs {
                    writeln!(f, "  {e}")?;
                }
                Ok(())
            }
            Error::Compile(e) => write!(f, "{e}"),
            Error::Semantics(e) => write!(f, "{e}"),
            Error::Exact(e) => write!(f, "{e}"),
            Error::Approx(e) => write!(f, "{e}"),
            Error::Psi(e) => write!(f, "{e}"),
            Error::Translate(e) => write!(f, "{e}"),
            Error::Usage(m) => write!(f, "usage error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<LangError> for Error {
    fn from(e: LangError) -> Self {
        Error::Parse(e)
    }
}

impl From<CompileError> for Error {
    fn from(e: CompileError) -> Self {
        Error::Compile(e)
    }
}

impl From<SemanticsError> for Error {
    fn from(e: SemanticsError) -> Self {
        Error::Semantics(e)
    }
}

impl From<ExactError> for Error {
    fn from(e: ExactError) -> Self {
        Error::Exact(e)
    }
}

impl From<ApproxError> for Error {
    fn from(e: ApproxError) -> Self {
        Error::Approx(e)
    }
}

impl From<PsiError> for Error {
    fn from(e: PsiError) -> Self {
        Error::Psi(e)
    }
}

impl From<TranslateError> for Error {
    fn from(e: TranslateError) -> Self {
        Error::Translate(e)
    }
}
