//! Arbitrary-precision signed integers, layered over [`BigUint`].

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

use crate::biguint::{BigUint, ParseNumError};

/// Sign of a [`BigInt`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Sign {
    /// Strictly negative.
    Minus,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Plus,
}

impl Sign {
    /// Flips `Plus` and `Minus`; `Zero` is its own negation.
    pub fn negate(self) -> Sign {
        match self {
            Sign::Minus => Sign::Plus,
            Sign::Zero => Sign::Zero,
            Sign::Plus => Sign::Minus,
        }
    }

    fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Plus,
            _ => Sign::Minus,
        }
    }
}

/// An arbitrary-precision signed integer.
///
/// Invariant: `sign == Sign::Zero` if and only if the magnitude is zero.
///
/// # Examples
///
/// ```
/// use bayonet_num::BigInt;
///
/// let a: BigInt = "-123456789123456789123456789".parse()?;
/// assert_eq!((&a + &-&a), BigInt::zero());
/// # Ok::<(), bayonet_num::ParseNumError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// The value 0.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            mag: BigUint::zero(),
        }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Plus,
            mag: BigUint::one(),
        }
    }

    /// Builds a value from a sign and magnitude (normalizing zero).
    pub fn from_sign_magnitude(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            assert!(sign != Sign::Zero, "nonzero magnitude with Zero sign");
            BigInt { sign, mag }
        }
    }

    /// The sign of the value.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude `|self|` as a [`BigUint`].
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// Consumes `self`, returning the magnitude.
    pub fn into_magnitude(self) -> BigUint {
        self.mag
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Plus && self.mag.is_one()
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Plus
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt {
            sign: if self.is_zero() {
                Sign::Zero
            } else {
                Sign::Plus
            },
            mag: self.mag.clone(),
        }
    }

    /// Converts to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.mag.to_u64()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Plus => i64::try_from(m).ok(),
            Sign::Minus => {
                if m <= i64::MAX as u64 + 1 {
                    Some((m as i64).wrapping_neg())
                } else {
                    None
                }
            }
        }
    }

    /// Converts to `i128` if the value fits.
    pub fn to_i128(&self) -> Option<i128> {
        let m = self.mag.to_u128()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Plus => i128::try_from(m).ok(),
            Sign::Minus => {
                if m <= i128::MAX as u128 + 1 {
                    Some((m as i128).wrapping_neg())
                } else {
                    None
                }
            }
        }
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        let m = self.mag.to_f64();
        match self.sign {
            Sign::Minus => -m,
            _ => m,
        }
    }

    /// Truncated division with remainder: `self = q * d + r` with
    /// `|r| < |d|` and `r` having the sign of `self` (or zero).
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn div_rem(&self, d: &BigInt) -> (BigInt, BigInt) {
        let (q_mag, r_mag) = self.mag.div_rem(&d.mag);
        let q = BigInt::from_sign_magnitude(
            if q_mag.is_zero() {
                Sign::Zero
            } else {
                self.sign.mul(d.sign)
            },
            q_mag,
        );
        let r = BigInt::from_sign_magnitude(
            if r_mag.is_zero() {
                Sign::Zero
            } else {
                self.sign
            },
            r_mag,
        );
        (q, r)
    }

    /// Greatest common divisor of magnitudes (always non-negative).
    pub fn gcd(&self, other: &BigInt) -> BigUint {
        self.mag.gcd(&other.mag)
    }

    /// Raises `self` to the power `exp`.
    pub fn pow(&self, exp: u32) -> BigInt {
        let mag = self.mag.pow(exp);
        let sign = if exp == 0 {
            Sign::Plus
        } else if self.sign == Sign::Minus && exp % 2 == 1 {
            Sign::Minus
        } else if self.is_zero() {
            Sign::Zero
        } else {
            Sign::Plus
        };
        BigInt::from_sign_magnitude(if mag.is_zero() { Sign::Zero } else { sign }, mag)
    }

    fn add_ref(&self, other: &BigInt) -> BigInt {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt {
                sign: a,
                mag: &self.mag + &other.mag,
            },
            _ => match self.mag.cmp(&other.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt {
                    sign: self.sign,
                    mag: &self.mag - &other.mag,
                },
                Ordering::Less => BigInt {
                    sign: other.sign,
                    mag: &other.mag - &self.mag,
                },
            },
        }
    }

    fn mul_ref(&self, other: &BigInt) -> BigInt {
        BigInt::from_sign_magnitude(self.sign.mul(other.sign), &self.mag * &other.mag)
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

impl From<BigUint> for BigInt {
    fn from(mag: BigUint) -> Self {
        let sign = if mag.is_zero() {
            Sign::Zero
        } else {
            Sign::Plus
        };
        BigInt { sign, mag }
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        BigInt::from(v as i128)
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt {
                sign: Sign::Plus,
                mag: BigUint::from(v as u128),
            },
            Ordering::Less => BigInt {
                sign: Sign::Minus,
                mag: BigUint::from(v.unsigned_abs()),
            },
        }
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        BigInt::from(BigUint::from(v))
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(v as i128)
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => match self.sign {
                Sign::Zero => Ordering::Equal,
                Sign::Plus => self.mag.cmp(&other.mag),
                Sign::Minus => other.mag.cmp(&self.mag),
            },
            ord => ord,
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.negate(),
            mag: self.mag.clone(),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = self.sign.negate();
        self
    }
}

macro_rules! forward_int_binop {
    ($trait:ident, $method:ident, $impl_fn:expr) => {
        impl $trait<&BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                let f: fn(&BigInt, &BigInt) -> BigInt = $impl_fn;
                f(self, rhs)
            }
        }
        impl $trait<BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                $trait::$method(self, &rhs)
            }
        }
    };
}

forward_int_binop!(Add, add, |a, b| a.add_ref(b));
forward_int_binop!(Sub, sub, |a, b| a.add_ref(&-b));
forward_int_binop!(Mul, mul, |a, b| a.mul_ref(b));

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = self.add_ref(rhs);
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = self.add_ref(&-rhs);
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        *self = self.mul_ref(rhs);
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Minus {
            f.write_str("-")?;
        }
        write!(f, "{}", self.mag)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl FromStr for BigInt {
    type Err = ParseNumError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (sign, digits) = match s.strip_prefix('-') {
            Some(rest) => (Sign::Minus, rest),
            None => (Sign::Plus, s.strip_prefix('+').unwrap_or(s)),
        };
        let mag: BigUint = digits.parse()?;
        Ok(BigInt::from_sign_magnitude(
            if mag.is_zero() { Sign::Zero } else { sign },
            mag,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn sign_invariant() {
        assert_eq!(int(0).sign(), Sign::Zero);
        assert_eq!(int(5).sign(), Sign::Plus);
        assert_eq!(int(-5).sign(), Sign::Minus);
        assert_eq!((int(5) + int(-5)).sign(), Sign::Zero);
    }

    #[test]
    fn add_sub_all_sign_combinations() {
        for a in [-7i128, -1, 0, 1, 9] {
            for b in [-4i128, -1, 0, 1, 13] {
                assert_eq!(int(a) + int(b), int(a + b), "{a} + {b}");
                assert_eq!(int(a) - int(b), int(a - b), "{a} - {b}");
                assert_eq!(int(a) * int(b), int(a * b), "{a} * {b}");
            }
        }
    }

    #[test]
    fn div_rem_truncates_toward_zero() {
        for (a, b) in [(7i128, 2i128), (-7, 2), (7, -2), (-7, -2), (6, 3), (0, 5)] {
            let (q, r) = int(a).div_rem(&int(b));
            assert_eq!(q, int(a / b), "{a} / {b}");
            assert_eq!(r, int(a % b), "{a} % {b}");
        }
    }

    #[test]
    fn ordering_across_signs() {
        assert!(int(-10) < int(-9));
        assert!(int(-1) < int(0));
        assert!(int(0) < int(1));
        assert!(int(100) > int(99));
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in [
            "0",
            "-1",
            "12345678901234567890123456789",
            "-987654321098765432109876543210",
        ] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert_eq!("-0".parse::<BigInt>().unwrap(), BigInt::zero());
        assert_eq!("+7".parse::<BigInt>().unwrap(), int(7));
    }

    #[test]
    fn pow_signs() {
        assert_eq!(int(-2).pow(3), int(-8));
        assert_eq!(int(-2).pow(4), int(16));
        assert_eq!(int(0).pow(0), int(1));
        assert_eq!(int(0).pow(3), int(0));
    }

    #[test]
    fn i64_conversion_boundaries() {
        assert_eq!(BigInt::from(i64::MIN).to_i64(), Some(i64::MIN));
        assert_eq!(BigInt::from(i64::MAX).to_i64(), Some(i64::MAX));
        assert_eq!((BigInt::from(i64::MAX) + BigInt::one()).to_i64(), None);
        assert_eq!((BigInt::from(i64::MIN) - BigInt::one()).to_i64(), None);
    }

    #[test]
    fn to_f64_sign() {
        assert_eq!(int(-12345).to_f64(), -12345.0);
    }
}
