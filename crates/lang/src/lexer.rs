//! Lexer for the Bayonet language.

use crate::error::LangError;
use crate::token::{Keyword, Span, Tok, Token};

/// Tokenizes a complete Bayonet source file.
///
/// Supports `//` line comments and `/* ... */` block comments.
///
/// # Errors
///
/// Returns a [`LangError`] on unknown characters or unterminated block
/// comments.
///
/// # Examples
///
/// ```
/// use bayonet_lang::lex;
///
/// let tokens = lex("fwd(1); // forward\n")?;
/// assert_eq!(tokens.len(), 6); // fwd ( 1 ) ; EOF
/// # Ok::<(), bayonet_lang::LangError>(())
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn here(&self) -> Span {
        Span {
            start: self.pos,
            end: self.pos,
            line: self.line,
            col: self.col,
        }
    }

    fn run(mut self) -> Result<Vec<Token>, LangError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let mut span = self.here();
            let Some(b) = self.peek() else {
                out.push(Token {
                    tok: Tok::Eof,
                    span,
                });
                return Ok(out);
            };
            let tok = match b {
                b'{' => {
                    self.bump();
                    Tok::LBrace
                }
                b'}' => {
                    self.bump();
                    Tok::RBrace
                }
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b';' => {
                    self.bump();
                    Tok::Semi
                }
                b'.' => {
                    self.bump();
                    Tok::Dot
                }
                b'@' => {
                    self.bump();
                    Tok::At
                }
                b'+' => {
                    self.bump();
                    Tok::Plus
                }
                b'*' => {
                    self.bump();
                    Tok::Star
                }
                b'/' => {
                    self.bump();
                    Tok::Slash
                }
                b'=' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::EqEq
                    } else {
                        Tok::Assign
                    }
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Ne
                    } else {
                        return Err(LangError::lex("expected `!=`", span));
                    }
                }
                b'<' => {
                    self.bump();
                    match self.peek() {
                        Some(b'=') => {
                            self.bump();
                            Tok::Le
                        }
                        Some(b'-') if self.peek2() == Some(b'>') => {
                            self.bump();
                            self.bump();
                            Tok::BiArrow
                        }
                        _ => Tok::Lt,
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Ge
                    } else {
                        Tok::Gt
                    }
                }
                b'-' => {
                    self.bump();
                    if self.peek() == Some(b'>') {
                        self.bump();
                        Tok::Arrow
                    } else {
                        Tok::Minus
                    }
                }
                b'0'..=b'9' => {
                    let start = self.pos;
                    while matches!(self.peek(), Some(b'0'..=b'9')) {
                        self.bump();
                    }
                    Tok::Int(self.src[start..self.pos].to_string())
                }
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                    let start = self.pos;
                    while matches!(
                        self.peek(),
                        Some(b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_')
                    ) {
                        self.bump();
                    }
                    let word = &self.src[start..self.pos];
                    match Keyword::from_str(word) {
                        Some(k) => Tok::Kw(k),
                        None => Tok::Ident(word.to_string()),
                    }
                }
                other => {
                    return Err(LangError::lex(
                        format!("unexpected character {:?}", other as char),
                        span,
                    ));
                }
            };
            span.end = self.pos;
            out.push(Token { tok, span });
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LangError> {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let open = self.here();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => return Err(LangError::lex("unterminated block comment", open)),
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            toks("def h0 fwd pkt_cnt"),
            vec![
                Tok::Kw(Keyword::Def),
                Tok::Ident("h0".into()),
                Tok::Kw(Keyword::Fwd),
                Tok::Ident("pkt_cnt".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn multi_character_operators() {
        assert_eq!(
            toks("== != <= >= <-> -> < > = -"),
            vec![
                Tok::EqEq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::BiArrow,
                Tok::Arrow,
                Tok::Lt,
                Tok::Gt,
                Tok::Assign,
                Tok::Minus,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("1 // comment\n 2 /* multi\nline */ 3"),
            vec![
                Tok::Int("1".into()),
                Tok::Int("2".into()),
                Tok::Int("3".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let tokens = lex("ab\n  cd").unwrap();
        assert_eq!(tokens[0].span.line, 1);
        assert_eq!(tokens[0].span.col, 1);
        assert_eq!(tokens[1].span.line, 2);
        assert_eq!(tokens[1].span.col, 3);
    }

    #[test]
    fn lone_bang_is_an_error() {
        assert!(lex("!").is_err());
        assert!(lex("a $ b").is_err());
        assert!(lex("/* unterminated").is_err());
    }

    #[test]
    fn paper_snippet_lexes() {
        let src = r#"
            def s0(pkt, pt) state route1(0), route2(0) {
              if pt == 1 { fwd(3); }
              else if pt == 3 {
                route1 = COST_01;
                if route1 < route2 or (route1 == route2 and flip(1/2)) {
                  fwd(1);
                } else { fwd(2); }
              }
            }
        "#;
        assert!(lex(src).is_ok());
    }
}
