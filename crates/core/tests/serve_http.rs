//! Cross-checks the HTTP service against the CLI: for the same program,
//! the server's `text` field must equal the `bayonet` binary's stdout
//! byte for byte.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

use bayonet_serve::{start, Json, ServerConfig, ServerHandle};

fn bay_source(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // repo root
    p.push("examples/bay");
    p.push(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn cli_stdout(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_bayonet"))
        .args(args)
        .output()
        .expect("spawn bayonet CLI");
    assert!(
        out.status.success(),
        "CLI failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

fn bay_path(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("examples/bay");
    p.push(name);
    p.to_string_lossy().into_owned()
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(request.as_bytes()).expect("write request");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let (head, payload) = raw.split_once("\r\n\r\n").expect("head/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, payload.to_string())
}

/// An ephemeral-port server; honors `BAYONET_TEST_CACHE_DIR` so the CLI
/// parity suite also runs with the persistent cache enabled (persistence
/// must never change a rendered byte).
fn server() -> ServerHandle {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    };
    if let Ok(root) = std::env::var("BAYONET_TEST_CACHE_DIR") {
        if !root.is_empty() {
            config.cache_dir = Some(PathBuf::from(root).join(format!(
                "serve-http-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            )));
        }
    }
    start(config).expect("start server")
}

fn text_field(payload: &str) -> String {
    let doc = bayonet_serve::parse_json(payload).expect("json body");
    assert_eq!(
        doc.get("ok").and_then(Json::as_bool),
        Some(true),
        "{payload}"
    );
    doc.get("text")
        .and_then(Json::as_str)
        .expect("text field")
        .to_string()
}

#[test]
fn run_text_matches_cli_stdout_byte_for_byte() {
    let handle = server();
    let body = Json::obj(vec![("source", Json::Str(bay_source("gossip_k4.bay")))]).to_string();
    let (status, payload) = post(handle.addr(), "/v1/run", &body);
    assert_eq!(status, 200, "{payload}");
    let served = text_field(&payload);
    let cli = cli_stdout(&["run", &bay_path("gossip_k4.bay")]);
    assert_eq!(served, cli);
    handle.shutdown();
}

#[test]
fn synthesize_text_matches_cli_stdout_byte_for_byte() {
    let handle = server();
    let body = Json::obj(vec![("source", Json::Str(bay_source("ecmp_costs.bay")))]).to_string();
    let (status, payload) = post(handle.addr(), "/v1/synthesize", &body);
    assert_eq!(status, 200, "{payload}");
    let served = text_field(&payload);
    let cli = cli_stdout(&["synthesize", &bay_path("ecmp_costs.bay")]);
    assert_eq!(served, cli);
    handle.shutdown();
}

#[test]
fn smc_text_matches_cli_stdout_byte_for_byte() {
    let handle = server();
    let body = Json::obj(vec![
        ("source", Json::Str(bay_source("gossip_k4.bay"))),
        ("engine", Json::Str("smc".into())),
        ("particles", Json::Num(300.0)),
        ("seed", Json::Num(11.0)),
    ])
    .to_string();
    let (status, payload) = post(handle.addr(), "/v1/run", &body);
    assert_eq!(status, 200, "{payload}");
    let served = text_field(&payload);
    let cli = cli_stdout(&[
        "run",
        &bay_path("gossip_k4.bay"),
        "--engine",
        "smc",
        "--particles",
        "300",
        "--seed",
        "11",
    ]);
    assert_eq!(served, cli);
    handle.shutdown();
}
