//! Query answering over the exact posterior, with piecewise-symbolic
//! results (paper Figures 3 and 8).
//!
//! With concrete parameters a query has a single rational answer. With
//! symbolic parameters, execution splits on sign atoms; the answer is
//! reported per **cell** — one consistent sign assignment to every atom
//! expression that occurred — exactly the three-row table of Figure 3.

use std::fmt;

use bayonet_num::Rat;
use bayonet_symbolic::{atom_exprs, enumerate_cells_cached, Assignment, FeasibilityCache, Guard};

use bayonet_net::{eval_query_expr, truth_of, CompiledQuery, Model, QueryKind, Val};

use crate::engine::{Analysis, ExactError};
use crate::enumerate::enumerate_eval_cached;

/// Maximum number of distinct sign-atom expressions a query result may
/// involve (cells grow as 3^n).
pub const MAX_CELL_ATOMS: usize = 12;

/// The answer restricted to one cell of parameter space.
#[derive(Debug, Clone)]
pub struct CellAnswer {
    /// The cell: a sign constraint on every atom expression.
    pub guard: Guard,
    /// The cell's constraint rendered with parameter names (`"true"` for
    /// the trivial cell).
    pub constraint: String,
    /// A concrete parameter assignment inside the cell.
    pub witness: Assignment,
    /// The query value on this cell. `None` when undefined there (all mass
    /// observed out, or an expectation with zero non-error mass).
    pub value: Option<Val>,
    /// Surviving (terminal) mass on this cell — the paper's `Z`.
    pub z: Rat,
    /// Mass discarded by observations on this cell.
    pub discarded: Rat,
}

/// A complete query result: one [`CellAnswer`] per feasible cell.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Probability or expectation.
    pub kind: QueryKind,
    /// Source text of the query.
    pub source: String,
    /// Per-cell answers (a single cell when no symbolic splits occurred).
    pub cells: Vec<CellAnswer>,
}

impl QueryResult {
    /// The unique cell of a non-symbolic result.
    ///
    /// # Panics
    ///
    /// Panics if the result is piecewise (more than one cell).
    pub fn single(&self) -> &CellAnswer {
        assert_eq!(
            self.cells.len(),
            1,
            "query result is piecewise; inspect .cells"
        );
        &self.cells[0]
    }

    /// The value of a non-symbolic, defined result as a rational.
    ///
    /// # Panics
    ///
    /// Panics if the result is piecewise, undefined, or symbolic.
    pub fn rat(&self) -> &Rat {
        match self.single().value.as_ref() {
            Some(Val::Rat(r)) => r,
            Some(Val::Sym(_)) => panic!("query value is symbolic"),
            None => panic!("query value is undefined (Z = 0)"),
        }
    }

    /// The value as `f64` (single-cell, defined results).
    pub fn to_f64(&self) -> f64 {
        self.rat().to_f64()
    }
}

impl fmt::Display for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            QueryKind::Probability => "probability",
            QueryKind::Expectation => "expectation",
        };
        writeln!(f, "{kind}({}):", self.source)?;
        for cell in &self.cells {
            let value = match &cell.value {
                Some(Val::Rat(r)) => format!("{r} ≈ {:.4}", r.to_f64()),
                Some(v) => format!("{v}"),
                None => "undefined (Z = 0)".to_string(),
            };
            if cell.constraint == "true" {
                writeln!(f, "  {value}")?;
            } else {
                writeln!(f, "  [{}] {value}", cell.constraint)?;
            }
        }
        Ok(())
    }
}

enum Contribution {
    /// Probability query: does the condition hold on this terminal?
    Truth(bool),
    /// Expectation query: the expression value (`None` on error terminals,
    /// which expectations exclude).
    Value(Option<Val>),
}

/// Computes the full posterior distribution of a query expression over the
/// non-error terminal configurations (normalized by the surviving mass):
/// the paper's §5.3 "analyze the distribution of the number of nodes that
/// will become infected in total".
///
/// Restricted to concrete models (no unbound parameters); entries are
/// sorted by value.
///
/// # Errors
///
/// Fails on symbolic splits, evaluation errors, or `Z = 0`.
pub fn value_distribution(
    model: &Model,
    analysis: &Analysis,
    query: &CompiledQuery,
) -> Result<Vec<(Rat, Rat)>, ExactError> {
    let mut acc: Vec<(Rat, Rat)> = Vec::new();
    let mut z = Rat::zero();
    for (cfg, guard, mass) in &analysis.terminals {
        if cfg.has_error() {
            continue;
        }
        if !guard.is_top() {
            return Err(ExactError::Semantics(
                bayonet_net::SemanticsError::SymbolicValueInConcreteContext(
                    "value_distribution needs all parameters bound".into(),
                ),
            ));
        }
        let states = |node: usize, slot: usize| cfg.nodes[node].state[slot].clone();
        let mut driver = bayonet_net::NoChoiceDriver;
        let v = eval_query_expr(model, &query.expr, &states, &mut driver)?;
        let Val::Rat(r) = v else {
            return Err(ExactError::Semantics(
                bayonet_net::SemanticsError::SymbolicValueInConcreteContext(
                    "value_distribution needs concrete values".into(),
                ),
            ));
        };
        z += mass;
        match acc.iter_mut().find(|(val, _)| *val == r) {
            Some((_, m)) => *m += mass,
            None => acc.push((r, mass.clone())),
        }
    }
    if z.is_zero() {
        return Err(ExactError::AllMassObservedOut);
    }
    for (_, m) in &mut acc {
        *m = &*m / &z;
    }
    acc.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(acc)
}

/// Answers a compiled query against an exact [`Analysis`].
///
/// # Errors
///
/// Fails on semantic evaluation errors, too many symbolic atoms, or a
/// globally-undefined posterior (`Z = 0` everywhere).
pub fn answer(
    model: &Model,
    analysis: &Analysis,
    query: &CompiledQuery,
    fm_pruning: bool,
) -> Result<QueryResult, ExactError> {
    answer_cached(model, analysis, query, fm_pruning, None)
}

/// [`answer`] with the feasibility checks of query-time sign splits and the
/// cell decomposition routed through a shared [`FeasibilityCache`].
///
/// The answering pass revisits the same guard prefixes the analysis already
/// proved feasible, so sharing the analysis run's cache (see
/// [`ExactOptions::feasibility_cache`](crate::ExactOptions)) answers most
/// checks from the memo table.
///
/// # Errors
///
/// As for [`answer`].
pub fn answer_cached(
    model: &Model,
    analysis: &Analysis,
    query: &CompiledQuery,
    fm_pruning: bool,
    cache: Option<&FeasibilityCache>,
) -> Result<QueryResult, ExactError> {
    // Evaluate the query on every terminal configuration, enumerating any
    // symbolic sign splits the evaluation itself introduces.
    let mut contributions: Vec<(Guard, Rat, Contribution)> = Vec::new();
    for (cfg, guard, mass) in &analysis.terminals {
        let states = |node: usize, slot: usize| cfg.nodes[node].state[slot].clone();
        let branches = enumerate_eval_cached(guard, fm_pruning, cache, |driver| {
            Ok(match query.kind {
                QueryKind::Probability => {
                    let v = eval_query_expr(model, &query.expr, &states, driver)?;
                    Contribution::Truth(truth_of(&v, driver)?)
                }
                QueryKind::Expectation => {
                    if cfg.has_error() {
                        Contribution::Value(None)
                    } else {
                        let v = eval_query_expr(model, &query.expr, &states, driver)?;
                        Contribution::Value(Some(v))
                    }
                }
            })
        })?;
        for b in branches {
            debug_assert!(b.weight.is_one(), "query evaluation draws no randomness");
            contributions.push((b.guard, mass.clone(), b.result));
        }
    }

    // Build the cell decomposition from every guard in sight.
    let mut all_guards: Vec<Guard> = contributions.iter().map(|(g, _, _)| g.clone()).collect();
    all_guards.extend(analysis.discarded.iter().map(|(g, _)| g.clone()));
    let exprs = atom_exprs(&all_guards);
    if exprs.len() > MAX_CELL_ATOMS {
        return Err(ExactError::ConfigLimit(exprs.len()));
    }
    let cells = enumerate_cells_cached(&exprs, cache);

    let mut out = Vec::with_capacity(cells.len());
    let mut any_defined = false;
    for cell in &cells {
        let mut z = Rat::zero();
        let mut numer_mass = Rat::zero();
        let mut exp_num = Val::zero();
        let mut exp_den = Rat::zero();
        for (g, mass, contribution) in &contributions {
            if !cell.admits(g) {
                continue;
            }
            z += mass;
            match contribution {
                Contribution::Truth(true) => numer_mass += mass,
                Contribution::Truth(false) => {}
                Contribution::Value(Some(v)) => {
                    exp_num = exp_num.add(
                        &v.mul(&Val::Rat(mass.clone()))
                            .map_err(|e| -> ExactError { e.into() })?,
                    );
                    exp_den += mass;
                }
                Contribution::Value(None) => {}
            }
        }
        let discarded = analysis
            .discarded
            .iter()
            .filter(|(g, _)| cell.admits(g))
            .fold(Rat::zero(), |acc, (_, m)| acc + m);

        let value = match query.kind {
            QueryKind::Probability => {
                if z.is_zero() {
                    None
                } else {
                    Some(Val::Rat(&numer_mass / &z))
                }
            }
            QueryKind::Expectation => {
                if exp_den.is_zero() {
                    None
                } else {
                    Some(exp_num.div(&Val::Rat(exp_den)).map_err(ExactError::from)?)
                }
            }
        };
        any_defined |= value.is_some();
        out.push(CellAnswer {
            constraint: cell.guard().display(&model.params).to_string(),
            guard: cell.guard().clone(),
            witness: cell.witness(),
            value,
            z,
            discarded,
        });
    }

    if !any_defined {
        return Err(ExactError::AllMassObservedOut);
    }
    Ok(QueryResult {
        kind: query.kind,
        source: query.source.clone(),
        cells: out,
    })
}
