//! Abstract syntax of the Bayonet language (paper Figure 4, plus the
//! surface declarations of Figure 2: topology, packet fields, program
//! assignment, queries, and our explicit `init`/`scheduler` blocks).

use bayonet_num::Rat;

use crate::token::Span;

/// An identifier with its source span.
#[derive(Clone, Debug)]
pub struct Ident {
    /// The name as written.
    pub name: String,
    /// Source position.
    pub span: Span,
}

impl Ident {
    /// Creates an identifier with a default span (used by builders/tests).
    pub fn synthetic(name: impl Into<String>) -> Self {
        Ident {
            name: name.into(),
            span: Span::default(),
        }
    }
}

impl PartialEq for Ident {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl Eq for Ident {}

impl std::fmt::Display for Ident {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// A complete Bayonet source file.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Declared packet header fields (`packet_fields { dst, id }`).
    pub packet_fields: Vec<Ident>,
    /// Declared symbolic configuration parameters (`parameters { COST_01 }`).
    pub parameters: Vec<Ident>,
    /// The network topology.
    pub topology: Topology,
    /// Assignment of node programs (`programs { H0 -> h0, ... }`).
    pub programs: Vec<(Ident, Ident)>,
    /// Queue capacity for all nodes (`queue_capacity 2;`); default 2 as in
    /// the paper's running example.
    pub queue_capacity: Option<u64>,
    /// Optional bound on global steps (`num_steps 64;`). Without it the
    /// engines run to termination (with a safety cap).
    pub num_steps: Option<u64>,
    /// Scheduler selection; defaults to the uniform scheduler of Figure 6.
    pub scheduler: SchedulerSpec,
    /// Packets present in input queues at time zero.
    pub init: Vec<InitPacket>,
    /// Queries to answer (at least one; paper §4 integrity checks).
    pub queries: Vec<Query>,
    /// Node program definitions.
    pub defs: Vec<NodeDef>,
}

/// The network topology: nodes and bidirectional links between interfaces.
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    /// Declared node names, in id order (node ids are indices).
    pub nodes: Vec<Ident>,
    /// Links between `(node, port)` interfaces.
    pub links: Vec<Link>,
}

/// A bidirectional link `(a, pa) <-> (b, pb)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Link {
    /// First endpoint.
    pub a: Endpoint,
    /// Second endpoint.
    pub b: Endpoint,
}

/// One side of a link: a node name and a port number.
#[derive(Clone, Debug, PartialEq)]
pub struct Endpoint {
    /// The node.
    pub node: Ident,
    /// The port (written `pt1` or `1`).
    pub port: u32,
}

/// Scheduler selection (the paper models schedulers as probabilistic
/// programs; we provide the three families used in the evaluation).
#[derive(Clone, Debug, PartialEq)]
pub enum SchedulerSpec {
    /// Uniform over enabled actions (paper Figure 6).
    Uniform,
    /// Deterministic round-robin (the paper's "det." scheduler).
    RoundRobin,
    /// Stateful rotor scheduler: a cursor sweeps the action space fairly
    /// (demonstrates the paper's stateful-scheduler machinery).
    Rotor,
    /// Weighted by node: enabled actions of node `n` get weight `w(n)`;
    /// models differing link/switch speeds.
    Weighted(Vec<(Ident, u64)>),
}

/// A packet injected at time zero into a node's input queue.
#[derive(Clone, Debug, PartialEq)]
pub struct InitPacket {
    /// Destination node of the injection.
    pub node: Ident,
    /// Port the packet appears to have arrived on.
    pub port: u32,
    /// Field initializers; unmentioned fields are 0.
    pub fields: Vec<(Ident, Expr)>,
}

/// A query over terminal network configurations (paper Figure 8).
#[derive(Clone, Debug, PartialEq)]
pub enum Query {
    /// `probability(b)` — probability that `b` holds at termination.
    Probability(Expr),
    /// `expectation(e)` — expected value of `e` over non-error terminals.
    Expectation(Expr),
}

impl Query {
    /// The expression inside the query.
    pub fn expr(&self) -> &Expr {
        match self {
            Query::Probability(e) | Query::Expectation(e) => e,
        }
    }
}

/// A node program definition `def name(pkt, pt) state x(e), ... { body }`.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeDef {
    /// Program name.
    pub name: Ident,
    /// Whether the `(pkt, pt)` parameter list was written (purely
    /// syntactic; `pkt`/`pt` are always in scope inside handlers).
    pub has_params: bool,
    /// State variables with initializer expressions, evaluated once at
    /// network construction time (initializers may be random, e.g.
    /// `state bad_hash(flip(1/10))`).
    pub state: Vec<(Ident, Expr)>,
    /// Handler body, run per packet at the head of the input queue.
    pub body: Vec<Stmt>,
}

/// Statements (paper Figure 4).
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `new;` — prepend a fresh all-zero packet (port 0) to the input queue.
    New(Span),
    /// `drop;` — remove the packet at the head of the input queue.
    Drop(Span),
    /// `dup;` — duplicate the packet at the head of the input queue.
    Dup(Span),
    /// `fwd(e);` — move the head packet to the output queue, targeting port `e`.
    Fwd(Expr, Span),
    /// `x = e;`
    Assign(Ident, Expr),
    /// `pkt.f = e;`
    FieldAssign(Ident, Expr),
    /// `assert(b);` — failure sends the node to the error state ⊥.
    Assert(Expr, Span),
    /// `observe(b);` — failure discards the current trace (Bayesian
    /// conditioning).
    Observe(Expr, Span),
    /// `skip;`
    Skip(Span),
    /// `if b { ... } else { ... }` (the else branch may be empty).
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while b { ... }`
    While(Expr, Vec<Stmt>),
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
}

impl BinOp {
    /// The source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }

    /// Returns `true` for comparison operators (result is 0/1).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Expressions. Booleans are encoded as 0/1 rationals; any nonzero value is
/// truthy (the paper writes `observe(0)` and `if flip(1/2) { ... }`).
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Rational literal (integer literals and folded fractions).
    Num(Rat, Span),
    /// An unresolved name: local/state variable, node name, or parameter —
    /// resolution happens during compilation against the declaration sets.
    Name(Ident),
    /// `pkt.f` — field of the packet at the head of the input queue.
    Field(Ident),
    /// `pt` — the arrival port of the head packet.
    Port(Span),
    /// `x@Node` — state of another node; only legal inside queries.
    At(Ident, Ident),
    /// `flip(p)` — Bernoulli draw, 1 with probability `p`.
    Flip(Box<Expr>, Span),
    /// `uniformInt(lo, hi)` — uniform integer in `[lo, hi]` inclusive.
    UniformInt(Box<Expr>, Box<Expr>, Span),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `not e`
    Not(Box<Expr>, Span),
    /// Unary minus.
    Neg(Box<Expr>, Span),
}

impl Expr {
    /// The source span of the expression's head token.
    pub fn span(&self) -> Span {
        match self {
            Expr::Num(_, s)
            | Expr::Port(s)
            | Expr::Flip(_, s)
            | Expr::UniformInt(_, _, s)
            | Expr::Not(_, s)
            | Expr::Neg(_, s) => *s,
            Expr::Name(id) | Expr::Field(id) | Expr::At(id, _) => id.span,
            Expr::Binary(_, lhs, _) => lhs.span(),
        }
    }

    /// Visits every sub-expression, including `self`.
    pub fn walk(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Flip(e, _) | Expr::Not(e, _) | Expr::Neg(e, _) => e.walk(f),
            Expr::UniformInt(a, b, _) | Expr::Binary(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            _ => {}
        }
    }

    /// Returns `true` if any sub-expression draws randomness.
    pub fn is_random(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::Flip(..) | Expr::UniformInt(..)) {
                found = true;
            }
        });
        found
    }
}

/// Visits every statement in a body, recursing into branches.
pub fn walk_stmts(stmts: &[Stmt], f: &mut dyn FnMut(&Stmt)) {
    for s in stmts {
        f(s);
        match s {
            Stmt::If(_, then_body, else_body) => {
                walk_stmts(then_body, f);
                walk_stmts(else_body, f);
            }
            Stmt::While(_, body) => walk_stmts(body, f),
            _ => {}
        }
    }
}

/// Visits every expression occurring in a body of statements.
pub fn walk_exprs(stmts: &[Stmt], f: &mut dyn FnMut(&Expr)) {
    walk_stmts(stmts, &mut |s| {
        let exprs: Vec<&Expr> = match s {
            Stmt::Fwd(e, _)
            | Stmt::Assign(_, e)
            | Stmt::FieldAssign(_, e)
            | Stmt::Assert(e, _)
            | Stmt::Observe(e, _)
            | Stmt::If(e, _, _)
            | Stmt::While(e, _) => vec![e],
            _ => vec![],
        };
        for e in exprs {
            e.walk(f);
        }
    });
}
