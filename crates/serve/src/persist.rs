//! Crash-safe on-disk persistence for the result cache.
//!
//! Exact posteriors are deterministic functions of the canonical program
//! and options, so a rendered `200` response can be replayed byte-for-byte
//! across process restarts. This module stores them in a single
//! **append-only segment file** (`results.seg`) inside `--cache-dir`:
//!
//! ```text
//! header:  "BAYC" magic (4 bytes) | format version (u32 LE)
//! record:  payload length (u32 LE) | CRC32 of payload (u32 LE) | payload
//! payload: cache key (u64 LE) | rendered response body (UTF-8 JSON)
//! ```
//!
//! Durability and corruption semantics:
//!
//! * **Write-behind** — inserts into the in-memory LRU enqueue an append
//!   onto a dedicated writer thread; each record is `fsync`ed before the
//!   `persist_writes` counter increments, so an observer of that counter
//!   (e.g. the CI crash harness) knows the record survives `SIGKILL`.
//! * **Warm load** — on startup the segment is scanned sequentially. A
//!   record whose CRC does not match is *skipped* (the length prefix still
//!   frames it); a record whose framing is implausible (bad length, past
//!   end-of-file) marks a torn tail: the file is truncated back to the last
//!   well-framed byte so future appends re-establish a clean log. Both are
//!   counted in `persist_load_corrupt`, never fatal. A bad or
//!   version-mismatched header discards the segment and starts fresh.
//! * **Compaction** — when the segment outgrows `max_bytes`, the writer
//!   snapshots the live LRU entries and rewrites them (least- to
//!   most-recently used) into a fresh segment via temp-file + atomic
//!   rename ([`bayonet_net::atomic_write`]), dropping dead appends and
//!   CRC-failed carcasses.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use bayonet_net::atomic_write;
use crossbeam::channel::{self, Sender};

/// Name of the segment file inside `--cache-dir`.
pub const SEGMENT_FILE: &str = "results.seg";

/// Default `--cache-max-bytes`: compaction threshold for the segment file.
pub const DEFAULT_CACHE_MAX_BYTES: u64 = 64 * 1024 * 1024;

const MAGIC: [u8; 4] = *b"BAYC";
const FORMAT_VERSION: u32 = 1;
const HEADER_LEN: usize = 8;
/// A payload is a key plus one JSON response body; anything claiming to be
/// larger than this is treated as framing corruption, not data.
const MAX_RECORD_PAYLOAD: u32 = 64 * 1024 * 1024;
/// Pending write-behind appends beyond this are dropped (persistence is
/// best-effort; the in-memory cache is unaffected).
const WRITE_QUEUE_CAPACITY: usize = 1024;

/// Where and how large the persistent cache may be.
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// Directory holding the segment file (created if missing).
    pub dir: PathBuf,
    /// Compaction threshold: when the segment file exceeds this many
    /// bytes, live LRU entries are rewritten into a fresh segment.
    pub max_bytes: u64,
}

/// Shared persistence counters, exported through `/metrics`.
#[derive(Debug, Default)]
pub struct PersistCounters {
    /// Records durably appended (incremented *after* `fsync`).
    pub writes: AtomicU64,
    /// Records loaded successfully at startup.
    pub load_ok: AtomicU64,
    /// Records skipped at startup: CRC mismatch, torn tail, bad header,
    /// or non-UTF-8 body.
    pub load_corrupt: AtomicU64,
    /// Segment rewrites triggered by the size bound.
    pub compactions: AtomicU64,
    /// Current segment file size in bytes.
    pub size_bytes: AtomicU64,
}

/// Callback producing the live cache entries, least- to most-recently
/// used, for compaction.
pub type SnapshotFn = Box<dyn Fn() -> Vec<(u64, Vec<u8>)> + Send>;

enum Msg {
    Append { key: u64, body: Vec<u8> },
}

/// Handle to the persistent segment: owns the write-behind thread.
///
/// Dropping the store flushes every queued append (the writer drains its
/// channel) and joins the thread, so a graceful shutdown loses nothing.
pub struct PersistentStore {
    tx: Option<Sender<Msg>>,
    writer: Option<JoinHandle<()>>,
    counters: Arc<PersistCounters>,
}

impl PersistentStore {
    /// Opens (or creates) the segment under `config.dir`, warm-loading
    /// surviving records, and spawns the write-behind thread.
    ///
    /// Returns the store plus the loaded `(key, body)` pairs in file
    /// order — oldest first, so inserting them sequentially into an LRU
    /// reproduces the pre-crash recency order.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created or the segment cannot be
    /// opened; *corrupt contents are never an error*, only counted.
    pub fn open(
        config: &PersistConfig,
        snapshot: SnapshotFn,
    ) -> io::Result<(PersistentStore, Vec<(u64, String)>)> {
        std::fs::create_dir_all(&config.dir)?;
        let path = config.dir.join(SEGMENT_FILE);
        let counters = Arc::new(PersistCounters::default());
        let loaded = load_segment(&path, &counters)?;

        let file = OpenOptions::new().append(true).open(&path)?;
        let size = file.metadata()?.len();
        counters.size_bytes.store(size, Ordering::Relaxed);

        let (tx, rx) = channel::bounded::<Msg>(WRITE_QUEUE_CAPACITY);
        let writer_counters = Arc::clone(&counters);
        let max_bytes = config.max_bytes.max(1);
        let writer = std::thread::spawn(move || {
            writer_loop(rx, file, path, size, max_bytes, snapshot, writer_counters);
        });

        Ok((
            PersistentStore {
                tx: Some(tx),
                writer: Some(writer),
                counters,
            },
            loaded,
        ))
    }

    /// Enqueues one record for durable append. Non-blocking: if the
    /// write-behind queue is full the record is dropped (it can be
    /// recomputed; the in-memory cache still holds it).
    pub fn append(&self, key: u64, body: Vec<u8>) {
        if let Some(tx) = &self.tx {
            let _ = tx.try_send(Msg::Append { key, body });
        }
    }

    /// The shared counters (for `/metrics`).
    pub fn counters(&self) -> Arc<PersistCounters> {
        Arc::clone(&self.counters)
    }
}

impl Drop for PersistentStore {
    fn drop(&mut self) {
        drop(self.tx.take()); // writer drains the queue, then exits
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
    }
}

fn writer_loop(
    rx: channel::Receiver<Msg>,
    mut file: File,
    path: PathBuf,
    mut size: u64,
    max_bytes: u64,
    snapshot: SnapshotFn,
    counters: Arc<PersistCounters>,
) {
    // Compaction triggers above this; raised past `max_bytes` when a
    // compacted live set is itself large, so a segment that *cannot*
    // shrink below the bound is not rewritten on every append.
    let mut compact_above = max_bytes;
    while let Ok(Msg::Append { key, body }) = rx.recv() {
        let record = encode_record(key, &body);
        if file
            .write_all(&record)
            .and_then(|()| file.sync_data())
            .is_err()
        {
            // Disk trouble: stop persisting, keep serving from memory.
            return;
        }
        size += record.len() as u64;
        counters.size_bytes.store(size, Ordering::Relaxed);
        counters.writes.fetch_add(1, Ordering::Relaxed);

        if size > compact_above {
            let mut bytes = Vec::with_capacity(HEADER_LEN);
            bytes.extend_from_slice(&MAGIC);
            bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            for (key, body) in snapshot() {
                bytes.extend_from_slice(&encode_record(key, &body));
            }
            let reopened = atomic_write(&path, &bytes)
                .and_then(|()| OpenOptions::new().append(true).open(&path));
            match reopened {
                Ok(f) => {
                    file = f;
                    size = bytes.len() as u64;
                    counters.size_bytes.store(size, Ordering::Relaxed);
                    counters.compactions.fetch_add(1, Ordering::Relaxed);
                    compact_above = max_bytes.max(2 * size);
                }
                Err(_) => return,
            }
        }
    }
}

fn encode_record(key: u64, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + body.len());
    payload.extend_from_slice(&key.to_le_bytes());
    payload.extend_from_slice(body);
    let mut record = Vec::with_capacity(8 + payload.len());
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&crc32(&payload).to_le_bytes());
    record.extend_from_slice(&payload);
    record
}

/// Scans the segment, returning surviving records in file order and
/// leaving the file well-framed (torn tails truncated away).
fn load_segment(path: &Path, counters: &PersistCounters) -> io::Result<Vec<(u64, String)>> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(&MAGIC);
            header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            atomic_write(path, &header)?;
            return Ok(Vec::new());
        }
        Err(e) => return Err(e),
    };

    let header_ok = bytes.len() >= HEADER_LEN
        && bytes[..4] == MAGIC
        && bytes[4..8] == FORMAT_VERSION.to_le_bytes();
    if !header_ok {
        // Unknown format or version: everything in it is unreadable.
        counters.load_corrupt.fetch_add(1, Ordering::Relaxed);
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        atomic_write(path, &header)?;
        return Ok(Vec::new());
    }

    let mut entries = Vec::new();
    let mut offset = HEADER_LEN;
    let mut well_framed_end = offset;
    while offset < bytes.len() {
        let Some(frame) = bytes.get(offset..offset + 8) else {
            // Fewer than 8 bytes left: a torn length/CRC prefix.
            counters.load_corrupt.fetch_add(1, Ordering::Relaxed);
            break;
        };
        let len = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
        if len < 8 || len > MAX_RECORD_PAYLOAD as usize || offset + 8 + len > bytes.len() {
            // Implausible length: the frame itself is damaged or the
            // record was cut off mid-write. Nothing after it can be
            // trusted to be framed.
            counters.load_corrupt.fetch_add(1, Ordering::Relaxed);
            break;
        }
        let payload = &bytes[offset + 8..offset + 8 + len];
        offset += 8 + len;
        if crc32(payload) != crc {
            // Framing is intact, contents are not: skip just this record.
            counters.load_corrupt.fetch_add(1, Ordering::Relaxed);
            well_framed_end = offset;
            continue;
        }
        let key = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        match String::from_utf8(payload[8..].to_vec()) {
            Ok(body) => {
                counters.load_ok.fetch_add(1, Ordering::Relaxed);
                entries.push((key, body));
            }
            Err(_) => {
                counters.load_corrupt.fetch_add(1, Ordering::Relaxed);
            }
        }
        well_framed_end = offset;
    }

    if well_framed_end < bytes.len() {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(well_framed_end as u64)?;
        f.sync_all()?;
    }
    Ok(entries)
}

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Seq;

    fn temp_cfg(tag: &str, max_bytes: u64) -> PersistConfig {
        static SEQ: Seq = Seq::new(0);
        let dir = std::env::temp_dir().join(format!(
            "bayonet-persist-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        PersistConfig { dir, max_bytes }
    }

    fn no_snapshot() -> SnapshotFn {
        Box::new(Vec::new)
    }

    fn open(cfg: &PersistConfig) -> (PersistentStore, Vec<(u64, String)>) {
        open_with(cfg, no_snapshot())
    }

    fn open_with(cfg: &PersistConfig, snap: SnapshotFn) -> (PersistentStore, Vec<(u64, String)>) {
        PersistentStore::open(cfg, snap).expect("open store")
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrips_records_across_reopen() {
        let cfg = temp_cfg("roundtrip", u64::MAX);
        let (store, loaded) = open(&cfg);
        assert!(loaded.is_empty());
        store.append(1, br#"{"a":1}"#.to_vec());
        store.append(2, br#"{"b":2}"#.to_vec());
        store.append(3, br#"{"c":3}"#.to_vec());
        drop(store); // flush + join

        let (store, loaded) = open(&cfg);
        assert_eq!(
            loaded,
            vec![
                (1, r#"{"a":1}"#.to_string()),
                (2, r#"{"b":2}"#.to_string()),
                (3, r#"{"c":3}"#.to_string()),
            ]
        );
        assert_eq!(store.counters().load_ok.load(Ordering::Relaxed), 3);
        assert_eq!(store.counters().load_corrupt.load(Ordering::Relaxed), 0);
        drop(store);
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn bit_flip_skips_only_the_damaged_record() {
        let cfg = temp_cfg("bitflip", u64::MAX);
        let (store, _) = open(&cfg);
        store.append(10, b"0123456789".to_vec());
        store.append(11, b"abcdefghij".to_vec());
        drop(store);

        let path = cfg.dir.join(SEGMENT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the first record's body (header 8 + frame 8 +
        // key 8 puts the body at offset 24).
        bytes[25] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let (store, loaded) = open(&cfg);
        assert_eq!(loaded, vec![(11, "abcdefghij".to_string())]);
        assert_eq!(store.counters().load_ok.load(Ordering::Relaxed), 1);
        assert_eq!(store.counters().load_corrupt.load(Ordering::Relaxed), 1);
        drop(store);
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let cfg = temp_cfg("torn", u64::MAX);
        let (store, _) = open(&cfg);
        store.append(20, b"first-record".to_vec());
        store.append(21, b"second-record".to_vec());
        drop(store);

        let path = cfg.dir.join(SEGMENT_FILE);
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap(); // cut into the second record
        drop(f);

        let (store, loaded) = open(&cfg);
        assert_eq!(loaded, vec![(20, "first-record".to_string())]);
        assert_eq!(store.counters().load_corrupt.load(Ordering::Relaxed), 1);
        // The torn bytes are gone; a fresh append lands on a clean frame.
        store.append(22, b"third-record".to_vec());
        drop(store);

        let (store, loaded) = open(&cfg);
        assert_eq!(
            loaded,
            vec![
                (20, "first-record".to_string()),
                (22, "third-record".to_string()),
            ]
        );
        assert_eq!(store.counters().load_corrupt.load(Ordering::Relaxed), 0);
        drop(store);
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn unknown_header_starts_fresh_and_counts_corrupt() {
        let cfg = temp_cfg("header", u64::MAX);
        std::fs::create_dir_all(&cfg.dir).unwrap();
        std::fs::write(cfg.dir.join(SEGMENT_FILE), b"NOPE\x09\x00\x00\x00junk").unwrap();

        let (store, loaded) = open(&cfg);
        assert!(loaded.is_empty());
        assert_eq!(store.counters().load_corrupt.load(Ordering::Relaxed), 1);
        store.append(30, b"after-reset".to_vec());
        drop(store);

        let (_store, loaded) = open(&cfg);
        assert_eq!(loaded, vec![(30, "after-reset".to_string())]);
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn compaction_rewrites_live_entries_within_bound() {
        // Tiny bound: every append overflows it, so the writer compacts
        // down to whatever the snapshot reports as live.
        let cfg = temp_cfg("compact", 64);
        let live: Arc<Vec<(u64, Vec<u8>)>> = Arc::new(vec![(7, b"live-entry".to_vec())]);
        let snap_live = Arc::clone(&live);
        let (store, _) = open_with(&cfg, Box::new(move || snap_live.as_ref().clone()));
        let counters = store.counters();
        for i in 0..50u64 {
            store.append(i, vec![b'x'; 100]);
        }
        drop(store); // joins the writer: all appends and compactions done
        assert!(counters.compactions.load(Ordering::Relaxed) >= 1);

        let (store, loaded) = open(&cfg);
        // Everything except the snapshot's live set (plus at most the
        // appends after the final compaction) was dropped.
        assert!(
            loaded.iter().any(|(k, _)| *k == 7),
            "live entry survived: {loaded:?}"
        );
        assert!(loaded.len() < 50, "compaction never ran: {}", loaded.len());
        drop(store);
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }
}
