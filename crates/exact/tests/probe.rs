//! Exploratory probes printing measured values (run with --nocapture).
//! These record the reproduction's concrete numbers for EXPERIMENTS.md.

use bayonet_exact::{analyze, answer};
use bayonet_lang::parse;
use bayonet_net::{compile, scheduler_for};
use bayonet_num::Rat;

mod common;

fn section2_src(scheduler: &str) -> String {
    format!(
        r#"
        packet_fields {{ dst }}
        parameters {{ COST_01, COST_02, COST_21 }}
        topology {{
            nodes {{ H0, H1, S0, S1, S2 }}
            links {{
                (H0, pt1) <-> (S0, pt3),
                (S0, pt1) <-> (S1, pt1), (S0, pt2) <-> (S2, pt1),
                (S1, pt2) <-> (S2, pt2), (S1, pt3) <-> (H1, pt1)
            }}
        }}
        programs {{ H0 -> h0, H1 -> h1, S0 -> s0, S1 -> s1, S2 -> s2 }}
        queue_capacity 2;
        scheduler {scheduler};
        init {{ packet -> (H0, pt1); }}
        query probability(pkt_cnt@H1 < 3);

        def h0(pkt, pt) state pkt_cnt(0) {{
            if pkt_cnt < 3 {{
                new;
                pkt.dst = H1;
                fwd(1);
                pkt_cnt = pkt_cnt + 1;
            }} else {{ drop; }}
        }}
        def h1(pkt, pt) state pkt_cnt(0) {{
            pkt_cnt = pkt_cnt + 1;
            drop;
        }}
        def s2(pkt, pt) {{
            if pt == 1 {{ fwd(2); }} else {{ fwd(1); }}
        }}
        def s0(pkt, pt) state route1(0), route2(0) {{
            if pt == 1 {{
                fwd(3);
            }} else {{ if pt == 2 {{
                if pkt.dst == H0 {{ fwd(3); }} else {{ fwd(1); }}
            }} else {{ if pt == 3 {{
                route1 = COST_01;
                route2 = COST_02 + COST_21;
                if route1 < route2 or (route1 == route2 and flip(1/2)) {{
                    fwd(1);
                }} else {{ fwd(2); }}
            }} else {{ drop; }} }} }}
        }}
        def s1(pkt, pt) state route1(0), route2(0) {{
            if pt == 1 {{
                fwd(3);
            }} else {{ if pt == 2 {{
                if pkt.dst == H1 {{ fwd(3); }} else {{ fwd(1); }}
            }} else {{ if pt == 3 {{
                route1 = COST_01;
                route2 = COST_02 + COST_21;
                if route1 < route2 or (route1 == route2 and flip(1/2)) {{
                    fwd(1);
                }} else {{ fwd(2); }}
            }} else {{ drop; }} }} }}
        }}
        "#
    )
}

#[test]
#[ignore = "exploratory probe; run with --ignored --nocapture"]
fn probe_congestion_uniform_concrete() {
    let program = parse(&section2_src("uniform")).unwrap();
    let mut m = compile(&program).unwrap();
    m.bind_param("COST_01", Rat::int(2)).unwrap();
    m.bind_param("COST_02", Rat::int(1)).unwrap();
    m.bind_param("COST_21", Rat::int(1)).unwrap();
    let t0 = std::time::Instant::now();
    let analysis = analyze(&m, &*scheduler_for(&m), &common::test_options()).unwrap();
    let result = answer(&m, &analysis, &m.queries[0], true).unwrap();
    println!(
        "congestion(uniform, concrete 2/1/1) = {} ≈ {:.6}  [{} terminals, {} steps, peak {}, {:?}]",
        result.rat(),
        result.to_f64(),
        analysis.stats.terminal_configs,
        analysis.stats.steps,
        analysis.stats.peak_configs,
        t0.elapsed(),
    );
}

#[test]
#[ignore = "exploratory probe; run with --ignored --nocapture"]
fn probe_congestion_symbolic_cells() {
    let program = parse(&section2_src("uniform")).unwrap();
    let m = compile(&program).unwrap();
    let t0 = std::time::Instant::now();
    let analysis = analyze(&m, &*scheduler_for(&m), &common::test_options()).unwrap();
    let result = answer(&m, &analysis, &m.queries[0], true).unwrap();
    println!("symbolic congestion cells ({:?}):", t0.elapsed());
    for cell in &result.cells {
        let value = cell
            .value
            .as_ref()
            .and_then(|v| v.as_rat())
            .map(|r| format!("{r} ≈ {:.6}", r.to_f64()))
            .unwrap_or_else(|| "undefined/symbolic".into());
        println!("  {} : {}", cell.guard.display(&m.params), value);
        println!(
            "    witness: {:?}",
            cell.witness
                .iter()
                .map(|(p, v)| format!("{}={}", m.params.name(*p), v))
                .collect::<Vec<_>>()
        );
    }
}
