//! The [`Network`] façade: parse → check → compile → infer.

use std::sync::Arc;

use bayonet_approx::{rejection, simulate, smc, ApproxOptions, Estimate, Simulation};
use bayonet_exact::{
    analyze, answer_cached, value_distribution, Analysis, EngineStats, ExactOptions, QueryResult,
};
use bayonet_lang::{check, parse, Warning};
use bayonet_net::{compile, scheduler_for, CompiledQuery, Model, Scheduler};
use bayonet_num::Rat;
use bayonet_psi::{infer_query, translate, PProgram, DEFAULT_STEP_LIMIT};

use crate::error::Error;

/// A checked, compiled probabilistic network, ready for inference.
///
/// # Examples
///
/// ```
/// use bayonet::Network;
/// use bayonet_num::Rat;
///
/// let network = Network::from_source(r#"
///     packet_fields { dst }
///     topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
///     programs { A -> send, B -> recv }
///     init { packet -> (A, pt1); }
///     query probability(got@B == 1);
///     def send(pkt, pt) { if flip(1/3) { fwd(1); } else { drop; } }
///     def recv(pkt, pt) state got(0) { got = 1; drop; }
/// "#)?;
/// let report = network.exact()?;
/// assert_eq!(*report.results[0].rat(), Rat::ratio(1, 3));
/// # Ok::<(), bayonet::Error>(())
/// ```
pub struct Network {
    model: Model,
    warnings: Vec<Warning>,
    scheduler: Box<dyn Scheduler>,
    source: String,
}

/// The result of an exact-inference run: one [`QueryResult`] per declared
/// query, plus engine statistics.
#[derive(Debug)]
pub struct ExactReport {
    /// Per-query results, in declaration order.
    pub results: Vec<QueryResult>,
    /// Engine statistics (steps, peak frontier size, merge hits, ...).
    pub stats: EngineStats,
    /// Total surviving mass (the normalization constant `Z` across all
    /// parameter cells).
    pub z: Rat,
    /// Total mass discarded by observations.
    pub discarded: Rat,
}

impl Network {
    /// Parses, integrity-checks (paper §4), and compiles a Bayonet source
    /// file.
    ///
    /// # Errors
    ///
    /// Returns parse errors, the full list of integrity violations, or
    /// compile errors.
    pub fn from_source(source: &str) -> Result<Network, Error> {
        let program = parse(source)?;
        let report = check(&program).map_err(Error::Check)?;
        let model = compile(&program)?;
        let scheduler = scheduler_for(&model);
        Ok(Network {
            model,
            warnings: report.warnings,
            scheduler,
            source: source.to_string(),
        })
    }

    /// The compiled model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Integrity-check warnings (non-fatal findings).
    pub fn warnings(&self) -> &[Warning] {
        &self.warnings
    }

    /// The declared queries.
    pub fn queries(&self) -> &[CompiledQuery] {
        &self.model.queries
    }

    /// The active scheduler.
    pub fn scheduler(&self) -> &dyn Scheduler {
        &*self.scheduler
    }

    /// Replaces the scheduler (overriding the source's `scheduler` clause).
    pub fn set_scheduler(&mut self, scheduler: Box<dyn Scheduler>) {
        self.scheduler = scheduler;
    }

    /// Runs the model-optimization pass pipeline in place and returns the
    /// pass report. Idempotent: once optimized, later calls return the
    /// cached report without re-running the passes. The exact engines also
    /// optimize on entry (unless [`ExactOptions::passes`] is off); calling
    /// this first simply makes the report inspectable — e.g. for the CLI's
    /// `--explain-passes` — and lets one optimized model serve many runs.
    pub fn optimize(&mut self) -> &bayonet_net::opt::OptReport {
        if self.model.opt_info().is_none() {
            self.model = bayonet_net::opt::optimize(&self.model);
        }
        &self
            .model
            .opt_info()
            .expect("optimize attaches opt_info")
            .report
    }

    /// Binds a symbolic parameter to a concrete value.
    ///
    /// # Errors
    ///
    /// Fails if the parameter was not declared.
    pub fn bind(&mut self, name: &str, value: Rat) -> Result<(), Error> {
        self.model.bind_param(name, value)?;
        Ok(())
    }

    /// Removes a parameter binding, making it symbolic again.
    ///
    /// # Errors
    ///
    /// Fails if the parameter was not declared.
    pub fn unbind(&mut self, name: &str) -> Result<(), Error> {
        self.model.unbind_param(name)?;
        Ok(())
    }

    /// Runs the exact engine (PSI role) with default options and answers
    /// every query.
    ///
    /// # Errors
    ///
    /// See [`bayonet_exact::ExactError`].
    pub fn exact(&self) -> Result<ExactReport, Error> {
        self.exact_with(&ExactOptions::default())
    }

    /// Runs the exact engine with explicit options.
    ///
    /// # Errors
    ///
    /// See [`bayonet_exact::ExactError`].
    pub fn exact_with(&self, opts: &ExactOptions) -> Result<ExactReport, Error> {
        // One feasibility memo table serves the whole run: query answering
        // revisits guards the analysis already proved, so sharing the cache
        // turns those re-checks into hits. The report's counters cover the
        // analysis and every query.
        let cache = opts.feasibility_cache.clone().unwrap_or_default();
        let (hits_before, misses_before) = cache.counts();
        let opts = ExactOptions {
            feasibility_cache: Some(Arc::clone(&cache)),
            ..opts.clone()
        };
        let analysis = self.analyze_with(&opts)?;
        let mut results = Vec::with_capacity(self.model.queries.len());
        for q in &self.model.queries {
            results.push(answer_cached(
                &self.model,
                &analysis,
                q,
                opts.fm_pruning,
                Some(&cache),
            )?);
        }
        let mut stats = analysis.stats.clone();
        let (hits_after, misses_after) = cache.counts();
        stats.feasibility_hits = hits_after - hits_before;
        stats.feasibility_misses = misses_after - misses_before;
        Ok(ExactReport {
            z: analysis.total_terminal_mass(),
            discarded: analysis.total_discarded_mass(),
            results,
            stats,
        })
    }

    /// Runs only the exploration phase of the exact engine, exposing the raw
    /// posterior over terminal configurations.
    ///
    /// # Errors
    ///
    /// See [`bayonet_exact::ExactError`].
    pub fn analyze_with(&self, opts: &ExactOptions) -> Result<Analysis, Error> {
        Ok(analyze(&self.model, &*self.scheduler, opts)?)
    }

    /// Estimates one query with Sequential Monte Carlo (WebPPL role).
    ///
    /// # Errors
    ///
    /// Fails on bad indices, unbound parameters, or sampling errors.
    pub fn smc(&self, query_idx: usize, opts: &ApproxOptions) -> Result<Estimate, Error> {
        let q = self.query_at(query_idx)?;
        Ok(smc(&self.model, &*self.scheduler, q, opts)?)
    }

    /// Estimates one query with rejection sampling.
    ///
    /// # Errors
    ///
    /// Fails on bad indices, unbound parameters, or sampling errors.
    pub fn rejection(&self, query_idx: usize, opts: &ApproxOptions) -> Result<Estimate, Error> {
        let q = self.query_at(query_idx)?;
        Ok(rejection(&self.model, &*self.scheduler, q, opts)?)
    }

    /// The "check" mode of the paper's Figure 1: is `Pr(S)` within
    /// `[lo, hi]`? Runs exact inference on probability query `query_idx`.
    ///
    /// # Errors
    ///
    /// Fails on bad indices, piecewise (symbolic) results, or inference
    /// errors.
    pub fn check_probability(&self, query_idx: usize, lo: &Rat, hi: &Rat) -> Result<bool, Error> {
        let report = self.exact()?;
        let result = report
            .results
            .get(query_idx)
            .ok_or_else(|| Error::Usage(format!("query index {query_idx} out of range")))?;
        if result.cells.len() != 1 {
            return Err(Error::Usage(
                "check_probability needs a concrete (single-cell) result;                  bind all parameters or inspect .cells"
                    .into(),
            ));
        }
        let p = result.rat();
        Ok(p >= lo && p <= hi)
    }

    /// Computes the exact posterior distribution of a query expression over
    /// non-error terminal states — e.g. the full distribution of infected
    /// nodes in the gossip benchmark (§5.3). Entries `(value, probability)`
    /// are sorted by value. Requires all parameters bound.
    ///
    /// # Errors
    ///
    /// Fails on bad indices, symbolic parameters, or inference errors.
    pub fn distribution(&self, query_idx: usize) -> Result<Vec<(Rat, Rat)>, Error> {
        let q = self.query_at(query_idx)?.clone();
        let analysis = self.analyze_with(&ExactOptions::default())?;
        Ok(value_distribution(&self.model, &analysis, &q)?)
    }

    /// Simulates a single randomized run (the "network simulator" mode of
    /// the paper's §6 comparison), recording every global step.
    ///
    /// # Errors
    ///
    /// Fails on unbound parameters or non-termination.
    pub fn simulate(&self, opts: &ApproxOptions) -> Result<Simulation, Error> {
        Ok(simulate(&self.model, &*self.scheduler, opts)?)
    }

    /// Renders the model as PSI source text (paper Figures 9–10).
    pub fn to_psi(&self) -> String {
        bayonet_psi::to_psi(&self.model)
    }

    /// Renders the model as WebPPL source text.
    pub fn to_webppl(&self) -> String {
        bayonet_psi::to_webppl(&self.model)
    }

    /// Translates one query into an executable PSI-core program.
    ///
    /// # Errors
    ///
    /// Fails on unbound parameters or unsupported features.
    pub fn psi_core(&self, query_idx: usize) -> Result<PProgram, Error> {
        let q = self.query_at(query_idx)?;
        Ok(translate(&self.model, q)?)
    }

    /// Answers one query through the PSI backend (translate, then enumerate
    /// traces) — the differential path.
    ///
    /// # Errors
    ///
    /// Fails on translation or inference errors.
    pub fn infer_via_psi(&self, query_idx: usize) -> Result<Rat, Error> {
        let q = self.query_at(query_idx)?;
        let program = translate(&self.model, q)?;
        Ok(infer_query(&program, q.kind, DEFAULT_STEP_LIMIT)?)
    }

    fn query_at(&self, idx: usize) -> Result<&CompiledQuery, Error> {
        self.model.queries.get(idx).ok_or_else(|| {
            Error::Usage(format!(
                "query index {idx} out of range ({} queries declared)",
                self.model.queries.len()
            ))
        })
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.model.node_names)
            .field("queries", &self.model.queries.len())
            .field("scheduler", &self.scheduler.name())
            .finish()
    }
}
