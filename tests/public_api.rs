//! Cross-crate integration tests of the public API surface.

use bayonet_repro::scenarios::{self, Sched};
use bayonet_repro::{
    synthesize_with, ApproxOptions, Error, Network, Objective, Rat, RotorScheduler,
    SynthesisOptions, UniformScheduler, WeightedScheduler,
};

const COIN_SRC: &str = r#"
    packet_fields { dst }
    topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
    programs { A -> send, B -> recv }
    init { packet -> (A, pt1); }
    query probability(got@B == 1);
    def send(pkt, pt) { if flip(1/3) { fwd(1); } else { drop; } }
    def recv(pkt, pt) state got(0) { got = 1; drop; }
"#;

#[test]
fn scheduler_override_changes_behavior() {
    // Gossip expectation is scheduler-independent: overriding the scheduler
    // must keep the answer while changing the exploration. Compare raw
    // trace trees: symmetry reduction (uniform-scheduler only) would mask
    // the scheduler-branching effect asserted below.
    let no_opt = bayonet_repro::ExactOptions {
        passes: false,
        ..Default::default()
    };
    let mut n = scenarios::gossip(4, Sched::Uniform).unwrap();
    let uniform_stats = n.exact_with(&no_opt).unwrap();
    n.set_scheduler(Box::new(RotorScheduler));
    assert_eq!(n.scheduler().name(), "rotor");
    let rotor_stats = n.exact_with(&no_opt).unwrap();
    assert_eq!(uniform_stats.results[0].rat(), rotor_stats.results[0].rat());
    assert!(rotor_stats.stats.peak_configs < uniform_stats.stats.peak_configs);

    n.set_scheduler(Box::new(WeightedScheduler::new(vec![5, 1, 1, 1])));
    let weighted = n.exact().unwrap();
    assert_eq!(weighted.results[0].rat(), uniform_stats.results[0].rat());
}

#[test]
fn rebinding_parameters_changes_answers() {
    let mut n = Network::from_source(
        r#"
        packet_fields { dst }
        parameters { P_KEEP }
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> send, B -> recv }
        init { packet -> (A, pt1); }
        query probability(got@B == 1);
        def send(pkt, pt) { if flip(P_KEEP) { fwd(1); } else { drop; } }
        def recv(pkt, pt) state got(0) { got = 1; drop; }
        "#,
    )
    .unwrap();
    n.bind("P_KEEP", Rat::ratio(1, 4)).unwrap();
    assert_eq!(*n.exact().unwrap().results[0].rat(), Rat::ratio(1, 4));
    n.bind("P_KEEP", Rat::ratio(9, 10)).unwrap();
    assert_eq!(*n.exact().unwrap().results[0].rat(), Rat::ratio(9, 10));
    // Unbinding makes the flip probability symbolic — a semantic error for
    // every engine (probabilities must be concrete).
    n.unbind("P_KEEP").unwrap();
    assert!(n.exact().is_err());
    assert!(matches!(n.bind("NOPE", Rat::one()), Err(Error::Compile(_))));
}

#[test]
fn simulation_is_reproducible_and_consistent_with_queries() {
    let n = Network::from_source(COIN_SRC).unwrap();
    let opts = ApproxOptions {
        seed: 123,
        ..Default::default()
    };
    let a = n.simulate(&opts).unwrap();
    let b = n.simulate(&opts).unwrap();
    assert_eq!(a.events, b.events);
    let terminal = a.terminal.expect("no observes");
    assert!(terminal.is_terminal());
}

#[test]
fn pretty_print_roundtrips_scenario_sources() {
    for src in [
        scenarios::congestion_example_source(Sched::Uniform),
        scenarios::congestion_chain_source(2, Sched::Deterministic),
        scenarios::reliability_chain_source(2, &Rat::ratio(1, 100), Sched::Uniform),
        scenarios::gossip_source(5, Sched::Uniform),
        scenarios::load_balancing_source(scenarios::LB_OBS_GOOD),
        scenarios::reliability_strategy_source(&[1, 2, 3]),
    ] {
        let parsed = bayonet_repro::parse(&src).unwrap();
        let printed = bayonet_repro::pretty_program(&parsed);
        let reparsed = bayonet_repro::parse(&printed)
            .unwrap_or_else(|e| panic!("pretty output unparseable: {e}\n{printed}"));
        assert_eq!(parsed, reparsed);
    }
}

#[test]
fn synthesis_options_control_the_witness() {
    let n = scenarios::congestion_example_symbolic(Sched::Uniform).unwrap();
    let plain = synthesize_with(
        &n,
        0,
        SynthesisOptions {
            objective: Objective::Minimize,
            positive_params: false,
        },
    )
    .unwrap();
    let positive = synthesize_with(
        &n,
        0,
        SynthesisOptions {
            objective: Objective::Minimize,
            positive_params: true,
        },
    )
    .unwrap();
    assert_eq!(plain.value, positive.value);
    // The positive witness has all costs > 0; the plain one may sit at 0.
    assert!(positive.assignment.values().all(|v| v.is_positive()));
    // Maximize picks the most congested cell (the strict-> case, 0.4787).
    let max = synthesize_with(
        &n,
        0,
        SynthesisOptions {
            objective: Objective::Maximize,
            positive_params: true,
        },
    )
    .unwrap();
    assert!(max.value > positive.value);
    assert!(max.constraint.contains("> 0"), "{}", max.constraint);
}

#[test]
fn query_index_errors_are_usage_errors() {
    let n = Network::from_source(COIN_SRC).unwrap();
    assert!(matches!(
        n.smc(7, &Default::default()),
        Err(Error::Usage(_))
    ));
    assert!(matches!(n.infer_via_psi(7), Err(Error::Usage(_))));
}

#[test]
fn error_display_is_informative() {
    let err = Network::from_source("topology { nodes { A } links { } }").unwrap_err();
    let text = format!("{err}");
    assert!(text.contains("integrity check failed"), "{text}");
    let err = Network::from_source("no such thing").unwrap_err();
    assert!(format!("{err}").contains("parse error"), "{err}");
}

#[test]
fn exact_report_exposes_z_and_discarded_mass() {
    let n = Network::from_source(
        r#"
        packet_fields { dst }
        topology { nodes { A, B } links { (A, pt1) <-> (B, pt1) } }
        programs { A -> a, B -> b }
        init { packet -> (A, pt1); }
        query probability(coin@A == 1);
        def a(pkt, pt) state coin(flip(1/4)) {
            observe(coin == 1 or flip(1/3));
            drop;
        }
        def b(pkt, pt) { drop; }
        "#,
    )
    .unwrap();
    let report = n.exact().unwrap();
    // Z = 1/4 + 3/4 * 1/3 = 1/2; discarded = 1/2.
    assert_eq!(report.z, Rat::ratio(1, 2));
    assert_eq!(report.discarded, Rat::ratio(1, 2));
    assert_eq!(*report.results[0].rat(), Rat::ratio(1, 2));
}

#[test]
fn uniform_scheduler_override_keeps_source_semantics() {
    // Source says roundrobin; overriding back to uniform must reproduce the
    // uniform value.
    let uni = scenarios::congestion_example(Sched::Uniform).unwrap();
    let expected = uni.exact().unwrap().results[0].rat().clone();
    let mut det = scenarios::congestion_example(Sched::Deterministic).unwrap();
    det.set_scheduler(Box::new(UniformScheduler));
    assert_eq!(*det.exact().unwrap().results[0].rat(), expected);
}

#[test]
fn check_probability_implements_the_figure1_check_mode() {
    let n = Network::from_source(COIN_SRC).unwrap();
    // P = 1/3.
    assert!(n
        .check_probability(0, &Rat::ratio(1, 4), &Rat::ratio(1, 2))
        .unwrap());
    assert!(!n
        .check_probability(0, &Rat::ratio(1, 2), &Rat::one())
        .unwrap());
    assert!(n.check_probability(9, &Rat::zero(), &Rat::one()).is_err());
    // Piecewise results are rejected with a pointer to .cells.
    let sym = scenarios::congestion_example_symbolic(Sched::Uniform).unwrap();
    assert!(sym.check_probability(0, &Rat::zero(), &Rat::one()).is_err());
}
